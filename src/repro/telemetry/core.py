"""The telemetry registry: spans, counters, and gauges.

One :class:`Telemetry` instance owns a sink and three instrument kinds:

* **spans** — wall-clock timers (``time.perf_counter``) opened with the
  context-manager :meth:`Telemetry.span`.  Spans nest; a span's record
  carries its full ``/``-joined path ("corpus.run/corpus.spec/…"), so the
  trace reconstructs the call tree without explicit parent ids.  A record
  is emitted when the span *closes*, so children precede parents in the
  stream — exactly the order a depth-first timer pops.
* **counters** — monotonic accumulators keyed by ``(name, attrs)``.
  Increments are buffered in-process and emitted as one record per key at
  :meth:`Telemetry.flush` (called automatically on :meth:`close` and at
  interpreter exit for env-configured telemetry).
* **gauges** — last-value-wins samples that also aggregate
  count/min/max/mean into the record's attributes (FIFO high-water
  marks, throughput samples).
* **histograms** — log-bucketed latency distributions
  (:mod:`repro.telemetry.hist`): each sample lands in an exponential
  bucket, and flush emits one mergeable snapshot record per
  ``(name, attrs)`` bucket — the distribution itself, not pre-chewed
  percentiles.
* **events** — immediate point-in-time records (kind ``"event"``),
  used for the trace ``link`` events that tie coalesced followers,
  hedged duplicates, and micro-batch members into request trees.

Spans participate in request tracing (:mod:`repro.telemetry.tracing`):
when a :class:`TraceContext` is active on the current thread, an opening
span allocates its own span id, emits ``trace_id``/``span_id``/
``parent_span_id`` on its record, and installs itself as the parent of
anything opened inside it.  Untraced spans emit exactly as before.

The **disabled path is near-zero-cost**: :func:`get` returns the shared
:data:`NULL` singleton whose ``span`` hands back one reusable no-op
context manager and whose counter/gauge methods return immediately.  Call
sites guard any non-trivial bookkeeping with ``if telemetry.enabled:``.

Configuration follows the environment by default: ``REPRO_TELEMETRY`` set
to a path appends JSONL records there (``-`` streams to stderr); unset
leaves telemetry disabled.  :func:`configure`, :func:`disable` and the
test helper :func:`capture` override the environment explicitly.
"""

from __future__ import annotations

import atexit
import logging
import os
import threading
import time
import uuid
from typing import Any, Dict, List, Optional, Tuple, Union

from . import tracing
from .hist import Histogram
from .sinks import JsonlSink, MemorySink, Sink
from .tracing import TraceContext

#: Environment variable enabling the JSONL sink (a path, or ``-`` = stderr).
TELEMETRY_ENV = "REPRO_TELEMETRY"

logger = logging.getLogger("repro.telemetry")

#: Attribute key tuple used to bucket counters/gauges: sorted (key, value).
_AttrKey = Tuple[Tuple[str, Any], ...]


def _attr_key(attrs: Dict[str, Any]) -> _AttrKey:
    return tuple(sorted(attrs.items()))


class Span:
    """One open span; emits its record on ``__exit__``.

    When a trace context is active on this thread, the span joins the
    request tree: it allocates a span id, records its parent, and
    installs a child context so nested spans chain under it.
    """

    __slots__ = (
        "_telemetry", "name", "attrs", "_path", "_start",
        "_span_id", "_parent_id", "_trace_id", "_token",
    )

    def __init__(self, telemetry: "Telemetry", name: str, attrs: Dict[str, Any]):
        self._telemetry = telemetry
        self.name = name
        self.attrs = attrs
        self._path = ""
        self._start = 0.0
        self._span_id: Optional[str] = None
        self._parent_id: Optional[str] = None
        self._trace_id: Optional[str] = None
        self._token: Any = None

    def annotate(self, **attrs: Any) -> "Span":
        """Attach attributes discovered after the span opened."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = self._telemetry._stack
        self._path = (
            f"{stack[-1]}/{self.name}" if stack else self.name
        )
        stack.append(self._path)
        context = tracing.current()
        if context is not None:
            self._trace_id = context.trace_id
            self._parent_id = context.span_id
            self._span_id = tracing.new_span_id()
            self._token = tracing.activate(context.child(self._span_id))
        self._start = time.perf_counter()
        return self

    def __exit__(self, *_exc: Any) -> None:
        duration = time.perf_counter() - self._start
        if self._token is not None:
            tracing.restore(self._token)
            self._token = None
        stack = self._telemetry._stack
        if stack and stack[-1] == self._path:
            stack.pop()
        self._telemetry._emit(
            kind="span",
            name=self._path,
            duration_s=round(duration, 9),
            attrs=self.attrs or None,
            trace_id=self._trace_id,
            span_id=self._span_id,
            parent_span_id=self._parent_id,
        )


class _NullSpan:
    """The reusable no-op span of the disabled path."""

    __slots__ = ()

    def annotate(self, **_attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """Disabled telemetry: every operation is a no-op.

    Shared singleton (:data:`NULL`); call sites check :attr:`enabled`
    before doing any bookkeeping of their own.
    """

    enabled = False
    run_id = "disabled"

    def span(self, name: str, **attrs: Any) -> _NullSpan:  # noqa: ARG002
        return _NULL_SPAN

    def counter(self, name: str, value: Union[int, float] = 1,
                **attrs: Any) -> None:
        return None

    def gauge(self, name: str, value: Union[int, float],
              **attrs: Any) -> None:
        return None

    def histogram(self, name: str, value: float, **attrs: Any) -> None:
        return None

    def event(self, name: str, **attrs: Any) -> None:
        return None

    def emit_span(self, name: str, trace: Optional["TraceContext"],
                  duration_s: float, **attrs: Any) -> None:
        return None

    def counter_total(self, name: str) -> Union[int, float]:  # noqa: ARG002
        return 0

    def flush(self) -> None:
        return None

    def close(self) -> None:
        return None


class Telemetry:
    """An enabled telemetry registry bound to one sink.

    Safe to share across threads: span nesting is tracked per thread
    (each serving worker gets its own stack), while record emission and
    counter/gauge accumulation serialise on one internal lock.
    """

    enabled = True

    def __init__(self, sink: Sink, run_id: Optional[str] = None):
        self.sink = sink
        self.run_id = run_id or uuid.uuid4().hex[:12]
        self._seq = 0
        self._origin = time.perf_counter()
        # Span nesting is per *thread*: the serving engine's worker
        # threads each keep their own open-span stack, so concurrent
        # spans cannot corrupt each other's paths.  Sequence numbers,
        # counters and gauges stay registry-global under ``_lock``.
        self._local = threading.local()
        self._lock = threading.Lock()
        self._counters: "Dict[Tuple[str, _AttrKey], Union[int, float]]" = {}
        self._gauges: Dict[Tuple[str, _AttrKey], Dict[str, float]] = {}
        self._hists: Dict[Tuple[str, _AttrKey], Histogram] = {}
        self._closed = False

    @property
    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- emission -----------------------------------------------------------

    def _emit(
        self,
        kind: str,
        name: str,
        duration_s: Optional[float] = None,
        value: Optional[Union[int, float]] = None,
        attrs: Optional[Dict[str, Any]] = None,
        worker: Optional[int] = None,
        trace_id: Optional[str] = None,
        span_id: Optional[str] = None,
        parent_span_id: Optional[str] = None,
    ) -> None:
        with self._lock:
            record: Dict[str, Any] = {
                "run_id": self.run_id,
                "seq": self._seq,
                "ts": round(time.perf_counter() - self._origin, 9),
                "kind": kind,
                "name": name,
            }
            self._seq += 1
            if duration_s is not None:
                record["duration_s"] = duration_s
            if value is not None:
                record["value"] = value
            if worker is not None:
                record["worker"] = worker
            if trace_id is not None:
                record["trace_id"] = trace_id
            if span_id is not None:
                record["span_id"] = span_id
            if parent_span_id is not None:
                record["parent_span_id"] = parent_span_id
            if attrs:
                record["attrs"] = attrs
            self.sink.write(record)

    def emit_merged(self, record: Dict[str, Any], worker: int) -> None:
        """Re-emit one captured worker record under this registry.

        Used by the parallel corpus runner: per-worker records come back
        with the results, ordered by spec index, and are re-stamped with
        this registry's run id and sequence — the merged trace is one
        self-consistent stream regardless of worker count.
        """
        with self._lock:
            merged = dict(record)
            merged["run_id"] = self.run_id
            merged["seq"] = self._seq
            merged["worker"] = worker
            self._seq += 1
            self.sink.write(merged)

    # -- instruments --------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a nested wall-clock span (use as a context manager)."""
        return Span(self, name, attrs)

    def counter(self, name: str, value: Union[int, float] = 1,
                **attrs: Any) -> None:
        """Add ``value`` to the counter ``name`` (bucketed by attrs)."""
        key = (name, _attr_key(attrs))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def gauge(self, name: str, value: Union[int, float],
              **attrs: Any) -> None:
        """Record a sample of gauge ``name`` (last value wins)."""
        key = (name, _attr_key(attrs))
        with self._lock:
            state = self._gauges.get(key)
            if state is None:
                self._gauges[key] = {
                    "last": value, "min": value, "max": value,
                    "sum": value, "count": 1,
                }
            else:
                state["last"] = value
                state["min"] = min(state["min"], value)
                state["max"] = max(state["max"], value)
                state["sum"] += value
                state["count"] += 1

    def histogram(self, name: str, value: float, **attrs: Any) -> None:
        """Record ``value`` into the log-bucketed histogram ``name``.

        Snapshots are emitted at :meth:`flush` as ``kind="hist"``
        records whose attrs carry the mergeable bucket counts.
        """
        key = (name, _attr_key(attrs))
        with self._lock:
            hist = self._hists.get(key)
            if hist is None:
                hist = self._hists[key] = Histogram()
        hist.record(value)

    def event(self, name: str, **attrs: Any) -> None:
        """Emit an immediate point-in-time record (kind ``"event"``).

        Events carry the active trace context, which makes them the
        vehicle for ``trace.link`` records — the edges tying coalesced
        followers, hedged duplicates, and batch members into one tree.
        """
        context = tracing.current()
        self._emit(
            kind="event",
            name=name,
            attrs=attrs or None,
            trace_id=context.trace_id if context else None,
            parent_span_id=context.span_id if context else None,
        )

    def emit_span(self, name: str, trace: Optional["TraceContext"],
                  duration_s: float, **attrs: Any) -> None:
        """Emit a span record directly, without timing a ``with`` block.

        This is how *root* request spans are written: the request's
        lifetime straddles threads (submit on one, fulfil on another),
        so no single ``with`` block can time it.  The layer that created
        ``trace`` calls this at resolution with the measured duration;
        the record's ``span_id`` is the trace's root span id and it has
        no parent — exactly one such record per trace.
        """
        self._emit(
            kind="span",
            name=name,
            duration_s=round(duration_s, 9),
            attrs=attrs or None,
            trace_id=trace.trace_id if trace else None,
            span_id=trace.span_id if trace else None,
        )

    def counter_total(self, name: str) -> Union[int, float]:
        """Unflushed total of ``name`` summed across attribute buckets."""
        with self._lock:
            return sum(
                value for (key, _), value in self._counters.items()
                if key == name
            )

    # -- lifecycle ----------------------------------------------------------

    def flush(self) -> None:
        """Emit one record per pending counter/gauge bucket and reset them.

        Buckets are emitted in sorted (name, attrs) order so a flush is
        deterministic for a deterministic workload.
        """
        with self._lock:
            counters, self._counters = self._counters, {}
            gauges, self._gauges = self._gauges, {}
            hists, self._hists = self._hists, {}
        for (name, attr_key) in sorted(counters, key=repr):
            self._emit(
                kind="counter",
                name=name,
                value=counters[(name, attr_key)],
                attrs=dict(attr_key) or None,
            )
        for (name, attr_key) in sorted(gauges, key=repr):
            state = gauges[(name, attr_key)]
            summary = {
                "min": state["min"],
                "max": state["max"],
                "mean": state["sum"] / state["count"],
                "count": state["count"],
            }
            self._emit(
                kind="gauge",
                name=name,
                value=state["last"],
                attrs={**dict(attr_key), **summary},
            )
        for (name, attr_key) in sorted(hists, key=repr):
            snap = hists[(name, attr_key)].snapshot()
            self._emit(
                kind="hist",
                name=name,
                value=snap["count"],
                attrs={**dict(attr_key), **snap},
            )
        self.sink.flush()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.flush()
        self.sink.close()


#: The shared disabled singleton.
NULL = NullTelemetry()

TelemetryLike = Union[Telemetry, NullTelemetry]

#: ``None`` means "not yet resolved from the environment".
_active: Optional[TelemetryLike] = None


def _from_env() -> TelemetryLike:
    target = os.environ.get(TELEMETRY_ENV, "").strip()
    if not target:
        return NULL
    telemetry = Telemetry(JsonlSink(target))
    atexit.register(telemetry.close)
    logger.debug("telemetry enabled via %s=%s", TELEMETRY_ENV, target)
    return telemetry


def get() -> TelemetryLike:
    """The active telemetry (resolved from ``REPRO_TELEMETRY`` once)."""
    global _active
    if _active is None:
        _active = _from_env()
    return _active


def configure(target: Union[str, Sink]) -> Telemetry:
    """Explicitly enable telemetry on a path, ``-`` (stderr), or sink."""
    global _active
    sink = target if isinstance(target, Sink) else JsonlSink(target)
    _active = Telemetry(sink)
    return _active


def swap(telemetry: Optional[TelemetryLike]) -> Optional[TelemetryLike]:
    """Install ``telemetry`` as active, returning the previous value.

    Passing the previous value back restores it — the mechanism behind
    :func:`capture` and the parallel runner's per-worker capture.
    """
    global _active
    previous = _active
    _active = telemetry
    return previous


def disable() -> None:
    """Force-disable telemetry (ignoring the environment)."""
    swap(NULL)


def reset() -> None:
    """Forget the active instance; the next :func:`get` re-reads the env."""
    swap(None)


class capture:
    """Context manager installing a memory-sink telemetry (tests, workers).

    >>> with capture() as tel:
    ...     with tel.span("work"):
    ...         tel.counter("items", 3)
    >>> [r["kind"] for r in tel.records]
    ['span', 'counter']
    """

    def __init__(self) -> None:
        self.sink = MemorySink()
        self.telemetry = Telemetry(self.sink)
        self._previous: Optional[TelemetryLike] = None

    @property
    def records(self) -> List[Dict[str, Any]]:
        return self.sink.records

    def __enter__(self) -> "capture":
        self._previous = swap(self.telemetry)
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.telemetry.flush()
        swap(self._previous)

    # Convenience passthroughs so the context object doubles as the
    # registry in test bodies.
    def span(self, name: str, **attrs: Any) -> Span:
        return self.telemetry.span(name, **attrs)

    def counter(self, name: str, value: Union[int, float] = 1,
                **attrs: Any) -> None:
        self.telemetry.counter(name, value, **attrs)

    def gauge(self, name: str, value: Union[int, float],
              **attrs: Any) -> None:
        self.telemetry.gauge(name, value, **attrs)

    def histogram(self, name: str, value: float, **attrs: Any) -> None:
        self.telemetry.histogram(name, value, **attrs)

    def event(self, name: str, **attrs: Any) -> None:
        self.telemetry.event(name, **attrs)

    def flush(self) -> None:
        self.telemetry.flush()


# -- one-time warnings ------------------------------------------------------

_warned_keys: set = set()


def warn_once(key: str, message: str) -> bool:
    """Log ``message`` once per process and count it in the telemetry.

    The shared path for "your environment variable is garbage" signals:
    a ``logging`` warning (visible without telemetry configured) plus a
    ``telemetry.warnings`` counter bucketed by ``key``.  Returns ``True``
    when the warning fired, ``False`` when it was already emitted.
    """
    if key in _warned_keys:
        return False
    _warned_keys.add(key)
    logger.warning(message)
    telemetry = get()
    if telemetry.enabled:
        telemetry.counter("telemetry.warnings", 1, key=key)
    return True


def reset_warnings() -> None:
    """Clear the one-time warning registry (test isolation)."""
    _warned_keys.clear()
