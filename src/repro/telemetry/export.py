"""Trace exporters: Chrome/Perfetto trace-event JSON and Prometheus text.

Two offline views of one JSONL trace:

* :func:`to_chrome_trace` renders the records as a Chrome trace-event
  array (the format ``chrome://tracing`` / https://ui.perfetto.dev load
  directly): spans become complete (``"X"``) events laid out on one
  track per worker thread, events become instants (``"i"``), and
  counters become counter (``"C"``) tracks.  Traced records carry their
  ``trace_id``/``span_id``/``parent_span_id`` in ``args``, so one
  request's causal tree can be followed visually across routing,
  hedging, coalescing, batching and the pipeline stages.
* :func:`to_prometheus` renders the final counter/gauge/hist records in
  the Prometheus text exposition format — a scrape-file stand-in for a
  ``/metrics`` endpoint, with histograms expanded into cumulative
  ``_bucket{le="…"}`` series.

Both operate on already-loaded record lists so they compose with the
tolerant loader (:func:`repro.telemetry.schema.load_trace_tolerant`).
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Iterable, List, Optional

from ..errors import TelemetryError
from .hist import bucket_upper

#: Environment knob: write a Chrome trace here when the CLI run closes.
TRACE_CHROME_ENV = "REPRO_TRACE_CHROME"

#: Environment knob: write a Prometheus text file here on close.
PROM_FILE_ENV = "REPRO_PROM_FILE"

_METRIC_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_]")


# -- Chrome trace-event format ----------------------------------------------


def to_chrome_trace(records: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Convert telemetry records to a Chrome trace-event JSON object.

    Timestamps: a record's ``ts`` is the span's *close* (records emit on
    ``__exit__``), so the complete event starts at ``ts - duration_s``.
    All times are exported in microseconds, the unit the format states.
    """
    events: List[Dict[str, Any]] = []
    for record in records:
        kind = record.get("kind")
        name = record.get("name", "")
        ts_us = float(record.get("ts", 0.0)) * 1e6
        tid = record.get("worker", 0)
        args: Dict[str, Any] = {}
        for field in ("trace_id", "span_id", "parent_span_id"):
            if field in record:
                args[field] = record[field]
        if record.get("attrs"):
            args.update(record["attrs"])
        if kind == "span":
            duration_us = float(record.get("duration_s", 0.0)) * 1e6
            events.append({
                "name": name.rsplit("/", 1)[-1],
                "cat": "span",
                "ph": "X",
                "ts": max(0.0, ts_us - duration_us),
                "dur": duration_us,
                "pid": 0,
                "tid": tid,
                "args": {**args, "path": name},
            })
        elif kind == "event":
            events.append({
                "name": name,
                "cat": "event",
                "ph": "i",
                "ts": ts_us,
                "s": "t",
                "pid": 0,
                "tid": tid,
                "args": args,
            })
        elif kind in ("counter", "gauge"):
            events.append({
                "name": name,
                "cat": kind,
                "ph": "C",
                "ts": ts_us,
                "pid": 0,
                "tid": tid,
                "args": {"value": record.get("value", 0)},
            })
        # hist records have no natural timeline shape; they are the
        # Prometheus exporter's concern.
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"format": "repro telemetry chrome export"},
    }


def write_chrome(path: str, records: Iterable[Dict[str, Any]]) -> int:
    """Write the Chrome trace for ``records`` to ``path``.

    Returns the number of trace events written.
    """
    trace = to_chrome_trace(records)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, separators=(",", ":"))
        handle.write("\n")
    return len(trace["traceEvents"])


def validate_chrome_file(path: str) -> int:
    """Check ``path`` parses as Chrome trace-event JSON; return event count.

    Verifies the structural invariants a trace viewer relies on: a
    ``traceEvents`` array whose entries all have ``name``/``ph``/``ts``,
    with ``dur`` present and non-negative on complete (``"X"``) events.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            trace = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise TelemetryError(f"{path}: not a Chrome trace ({error})") from error
    if not isinstance(trace, dict) or not isinstance(
        trace.get("traceEvents"), list
    ):
        raise TelemetryError(f"{path}: missing traceEvents array")
    for index, event in enumerate(trace["traceEvents"]):
        if not isinstance(event, dict):
            raise TelemetryError(f"{path}: event {index} is not an object")
        for field in ("name", "ph", "ts"):
            if field not in event:
                raise TelemetryError(
                    f"{path}: event {index} missing {field!r}"
                )
        if event["ph"] == "X" and (
            not isinstance(event.get("dur"), (int, float))
            or event["dur"] < 0
        ):
            raise TelemetryError(
                f"{path}: event {index} has invalid dur {event.get('dur')!r}"
            )
    return len(trace["traceEvents"])


# -- Prometheus text exposition ---------------------------------------------


def _metric_name(name: str) -> str:
    return _METRIC_SANITIZE_RE.sub("_", name)


def _labels(attrs: Optional[Dict[str, Any]], skip: tuple = ()) -> str:
    if not attrs:
        return ""
    parts = []
    for key in sorted(attrs):
        if key in skip:
            continue
        value = str(attrs[key]).replace("\\", "\\\\").replace('"', '\\"')
        parts.append(f'{_LABEL_SANITIZE_RE.sub("_", key)}="{value}"')
    return "{" + ",".join(parts) + "}" if parts else ""


#: Gauge-attr keys that are flush aggregates, not labels.
_GAUGE_AGGREGATES = ("min", "max", "mean", "count")

#: Hist-attr keys that are the snapshot payload, not labels.
_HIST_SNAPSHOT = ("buckets", "count", "sum", "min", "max", "growth")


def to_prometheus(records: Iterable[Dict[str, Any]]) -> str:
    """Render counter/gauge/hist records as Prometheus exposition text.

    Later records win for duplicate series (matching last-flush-wins
    semantics of the underlying registry).
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    hists: Dict[str, Dict[str, Any]] = {}
    hist_labels: Dict[str, str] = {}
    for record in records:
        kind = record.get("kind")
        name = record.get("name", "")
        attrs = record.get("attrs") or {}
        if kind == "counter":
            series = _metric_name(name) + "_total" + _labels(attrs)
            counters[series] = counters.get(series, 0) + record.get("value", 0)
        elif kind == "gauge":
            series = _metric_name(name) + _labels(
                attrs, skip=_GAUGE_AGGREGATES
            )
            gauges[series] = record.get("value", 0)
        elif kind == "hist":
            base = _metric_name(name)
            labels = _labels(attrs, skip=_HIST_SNAPSHOT)
            hists[base + labels] = attrs
            hist_labels[base + labels] = labels
    lines: List[str] = []
    for series in sorted(counters):
        base = series.split("{", 1)[0]
        lines.append(f"# TYPE {base} counter")
        lines.append(f"{series} {counters[series]}")
    for series in sorted(gauges):
        base = series.split("{", 1)[0]
        lines.append(f"# TYPE {base} gauge")
        lines.append(f"{series} {gauges[series]}")
    for series in sorted(hists):
        snap = hists[series]
        labels = hist_labels[series]
        base = series[: len(series) - len(labels)] if labels else series
        label_body = labels[1:-1] if labels else ""
        lines.append(f"# TYPE {base} histogram")
        cumulative = 0
        buckets = snap.get("buckets") or {}
        for key in sorted(buckets, key=int):
            cumulative += buckets[key]
            upper = bucket_upper(int(key))
            le = f'le="{upper:.9g}"'
            joined = f"{label_body},{le}" if label_body else le
            lines.append(f"{base}_bucket{{{joined}}} {cumulative}")
        le_inf = 'le="+Inf"'
        joined = f"{label_body},{le_inf}" if label_body else le_inf
        lines.append(f"{base}_bucket{{{joined}}} {snap.get('count', 0)}")
        lines.append(f"{base}_sum{labels} {snap.get('sum', 0.0)}")
        lines.append(f"{base}_count{labels} {snap.get('count', 0)}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(path: str, records: Iterable[Dict[str, Any]]) -> int:
    """Write the Prometheus text for ``records``; returns line count."""
    text = to_prometheus(records)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text.count("\n")
