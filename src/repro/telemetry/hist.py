"""Log-bucketed histograms: mergeable latency distributions.

A :class:`Histogram` counts samples into exponentially spaced buckets:
bucket ``i`` covers ``[GROWTH**i, GROWTH**(i+1))`` with
``GROWTH = 2**0.25`` (four buckets per octave, ~19 % relative width).
That bounds the error of any histogram-derived quantile to one bucket
width while keeping the representation tiny and **mergeable** — the
properties raw latency lists lack:

* merging two histograms is exact (add bucket counts), so per-device /
  per-worker distributions roll up into fleet distributions without
  shipping every sample;
* memory is O(occupied buckets) — a month of latencies costs the same
  as a minute;
* a snapshot serialises into a record's ``attrs`` and reconstructs
  losslessly, so traces carry real distributions, not just pre-chewed
  percentiles.

Samples ``<= 0`` land in a dedicated underflow bucket (index
:data:`ZERO_BUCKET`) — they count toward ``count`` and rank at the
bottom of every quantile, mirroring how a zero latency would sort.

:class:`Histogram` is the mutable accumulator
(:meth:`~Histogram.record`); :func:`snapshot` / :func:`merge` /
:func:`quantile` operate on the plain-dict snapshot form that travels
inside telemetry records.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, Iterable, Optional

#: Bucket growth factor: four buckets per octave (~18.9 % wide).
GROWTH = 2.0 ** 0.25

_LOG_GROWTH = math.log(GROWTH)

#: Index of the underflow bucket collecting samples <= 0.
ZERO_BUCKET = -(10 ** 6)


def bucket_index(value: float) -> int:
    """The bucket a sample falls in (``ZERO_BUCKET`` for ``<= 0``)."""
    if value <= 0.0:
        return ZERO_BUCKET
    return math.floor(math.log(value) / _LOG_GROWTH + 1e-12)


def bucket_lower(index: int) -> float:
    """Inclusive lower bound of bucket ``index`` (0 for the underflow)."""
    if index == ZERO_BUCKET:
        return 0.0
    return GROWTH ** index


def bucket_upper(index: int) -> float:
    """Exclusive upper bound of bucket ``index``."""
    if index == ZERO_BUCKET:
        return 0.0
    return GROWTH ** (index + 1)


class Histogram:
    """A thread-safe log-bucketed accumulator."""

    __slots__ = ("_lock", "counts", "count", "total", "min", "max")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counts: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, value: float) -> None:
        index = bucket_index(value)
        with self._lock:
            self.counts[index] = self.counts.get(index, 0) + 1
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def __len__(self) -> int:
        with self._lock:
            return self.count

    def snapshot(self) -> Dict[str, Any]:
        """The plain-dict snapshot form (see module docstring)."""
        with self._lock:
            return {
                "buckets": {str(k): v for k, v in sorted(self.counts.items())},
                "count": self.count,
                "sum": round(self.total, 9),
                "min": self.min if self.min is not None else 0.0,
                "max": self.max if self.max is not None else 0.0,
                "growth": round(GROWTH, 9),
            }

    def quantile(self, q: float) -> float:
        """Histogram-derived ``q``-quantile (``q`` in [0, 100])."""
        return quantile(self.snapshot(), q)

    def summary(self) -> Dict[str, float]:
        """count/mean/max plus p50/p95/p99 — the SLO-summary shape."""
        snap = self.snapshot()
        count = snap["count"]
        return {
            "count": count,
            "mean": (snap["sum"] / count) if count else 0.0,
            "max": snap["max"],
            "p50": quantile(snap, 50.0),
            "p95": quantile(snap, 95.0),
            "p99": quantile(snap, 99.0),
        }


def empty_snapshot() -> Dict[str, Any]:
    """The identity element of :func:`merge`."""
    return {
        "buckets": {}, "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
        "growth": round(GROWTH, 9),
    }


def merge(left: Dict[str, Any], right: Dict[str, Any]) -> Dict[str, Any]:
    """Merge two snapshots (exact, associative, commutative)."""
    buckets = dict(left.get("buckets", {}))
    for key, value in right.get("buckets", {}).items():
        buckets[key] = buckets.get(key, 0) + value
    lcount, rcount = left.get("count", 0), right.get("count", 0)
    mins = [s["min"] for s, c in ((left, lcount), (right, rcount)) if c]
    maxs = [s["max"] for s, c in ((left, lcount), (right, rcount)) if c]
    return {
        "buckets": {k: buckets[k] for k in sorted(buckets, key=int)},
        "count": lcount + rcount,
        "sum": round(left.get("sum", 0.0) + right.get("sum", 0.0), 9),
        "min": min(mins) if mins else 0.0,
        "max": max(maxs) if maxs else 0.0,
        "growth": left.get("growth") or right.get("growth")
        or round(GROWTH, 9),
    }


def merge_all(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold any number of snapshots into one."""
    merged = empty_snapshot()
    for snap in snapshots:
        merged = merge(merged, snap)
    return merged


def quantile(snapshot: Dict[str, Any], q: float) -> float:
    """The ``q``-th percentile of a snapshot (``q`` in [0, 100]).

    Walks the cumulative bucket counts to the target rank and returns
    the matched bucket's midpoint, clamped to the observed min/max —
    within one bucket width of the exact sample percentile by
    construction.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile {q!r} outside [0, 100]")
    count = snapshot.get("count", 0)
    if not count:
        return 0.0
    target = (q / 100.0) * count
    seen = 0
    indices = sorted(snapshot.get("buckets", {}), key=int)
    for key in indices:
        seen += snapshot["buckets"][key]
        if seen >= target:
            index = int(key)
            if index == ZERO_BUCKET:
                return max(0.0, snapshot.get("min", 0.0))
            mid = (bucket_lower(index) + bucket_upper(index)) / 2.0
            return min(max(mid, snapshot.get("min", mid)),
                       snapshot.get("max", mid))
    return snapshot.get("max", 0.0)
