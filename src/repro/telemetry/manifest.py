"""Run manifests: the provenance record written next to benchmark output.

A ``BENCH_*.json`` number is only reproducible if you know what produced
it — which commit, which interpreter, which numpy, how many workers, and
which accelerator configurations.  :func:`write_manifest` captures that
alongside the benchmark file as ``<stem>.manifest.json``; every field
degrades gracefully (``None``) when unavailable (e.g. no git binary in
the environment).
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, Optional

from ..config import DEFAULT_CHASON, DEFAULT_SERPENS
from . import core


def _git_sha() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


#: Runtime knobs folded into :func:`config_hash`: anything that changes
#: what a benchmark *measured* (estimate-tier vs exact-tier, audit and
#: trace sampling overhead) must move the digest so manifests from
#: different fidelity configurations never compare as equal runs.
#: Raw environment strings are hashed (layering: telemetry sits below
#: the estimator, so it must not import the estimator's resolvers).
_HASHED_ENV_KNOBS = ("REPRO_FIDELITY", "REPRO_AUDIT_RATE",
                     "REPRO_TRACE_SAMPLE")


def _fidelity_env() -> Dict[str, Optional[str]]:
    return {
        knob: (os.environ.get(knob) or None) for knob in _HASHED_ENV_KNOBS
    }


def config_hash() -> str:
    """A stable digest of the configuration a run measured.

    Covers the default accelerator configurations (frozen-dataclass
    reprs list every field, so any config change moves the digest) plus
    the fidelity/audit/trace-sampling environment — an estimate-tier
    bench run hashes differently from an exact-tier one.
    """
    payload = repr(
        (DEFAULT_CHASON, DEFAULT_SERPENS, sorted(_fidelity_env().items()))
    ).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def build_manifest(
    workers: Optional[int] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the provenance record for the current process."""
    import numpy

    from ..analysis.runner import corpus_worker_count

    telemetry = core.get()
    manifest: Dict[str, Any] = {
        "created_unix": round(time.time(), 3),
        "git_sha": _git_sha(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "argv": sys.argv,
        "config_hash": config_hash(),
        "workers": workers if workers is not None else corpus_worker_count(),
        "telemetry_run_id": telemetry.run_id if telemetry.enabled else None,
        "telemetry_sink": os.environ.get(core.TELEMETRY_ENV) or None,
        "fidelity_env": _fidelity_env(),
    }
    if extra:
        manifest.update(extra)
    return manifest


def manifest_path_for(bench_json_path: "os.PathLike[str]") -> Path:
    """``BENCH_foo.json`` → ``BENCH_foo.manifest.json``."""
    path = Path(bench_json_path)
    return path.with_name(f"{path.stem}.manifest.json")


def write_manifest(
    bench_json_path: "os.PathLike[str]",
    workers: Optional[int] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write the manifest next to a benchmark JSON file; returns its path."""
    target = manifest_path_for(bench_json_path)
    manifest = build_manifest(workers=workers, extra=extra)
    target.write_text(json.dumps(manifest, indent=2) + "\n")
    return target
