"""The JSONL event record schema, and a dependency-free validator.

Every record a :class:`~repro.telemetry.core.Telemetry` emits is one JSON
object per line, self-describing under :data:`EVENT_SCHEMA` (JSON Schema
draft-07 vocabulary).  The validator below implements exactly the checks
the schema states — no ``jsonschema`` dependency — so CI can validate a
trace with the library alone, and the schema dict itself can be exported
for external tooling (``python -m repro telemetry schema``).

Record fields
=============

============== ========= ================================================
field          kinds     meaning
============== ========= ================================================
run_id         all       12-hex id shared by all records of one registry
seq            all       monotonic per-registry sequence number
ts             all       seconds since the emitting registry started
kind           all       ``span`` | ``counter`` | ``gauge`` | ``event``
                         | ``hist``
name           all       span *path* ("a/b/c") or instrument name
duration_s     span      wall-clock seconds the span was open
value          counter,  accumulated total (counter) / last sample
               gauge,    (gauge) / sample count (hist)
               hist
worker         merged    worker index a parallel-runner record came from
trace_id       traced    16-hex request-tree id (spans/events of traced
                         requests)
span_id        traced    this span's id within the trace
parent_span_id traced    parent span's id (absent on the tree root)
attrs          optional  free-form attributes; for ``hist`` records the
                         mergeable bucket snapshot lives here
============== ========= ================================================
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Iterable, Union

from ..errors import TelemetryError

#: JSON Schema (draft-07) for one JSONL event record.
EVENT_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro telemetry event record",
    "type": "object",
    "required": ["run_id", "seq", "ts", "kind", "name"],
    "properties": {
        "run_id": {"type": "string", "pattern": "^[0-9a-f]{12}$"},
        "seq": {"type": "integer", "minimum": 0},
        "ts": {"type": "number", "minimum": 0},
        "kind": {"enum": ["span", "counter", "gauge", "event", "hist"]},
        "name": {"type": "string", "minLength": 1},
        "duration_s": {"type": "number", "minimum": 0},
        "value": {"type": "number"},
        "worker": {"type": "integer", "minimum": 0},
        "trace_id": {"type": "string", "pattern": "^[0-9a-f]{16}$"},
        "span_id": {"type": "string", "pattern": "^[0-9a-f]+$"},
        "parent_span_id": {"type": "string", "pattern": "^[0-9a-f]+$"},
        "attrs": {"type": "object"},
    },
    "additionalProperties": False,
    "allOf": [
        {
            "if": {"properties": {"kind": {"const": "span"}}},
            "then": {"required": ["duration_s"]},
        },
        {
            "if": {"properties": {"kind": {"const": "counter"}}},
            "then": {"required": ["value"]},
        },
        {
            "if": {"properties": {"kind": {"const": "gauge"}}},
            "then": {"required": ["value"]},
        },
        {
            "if": {"properties": {"kind": {"const": "hist"}}},
            "then": {"required": ["value"]},
        },
    ],
}

_RUN_ID_RE = re.compile(r"^[0-9a-f]{12}$")
_TRACE_ID_RE = re.compile(r"^[0-9a-f]{16}$")
_SPAN_ID_RE = re.compile(r"^[0-9a-f]+$")
_KINDS = ("span", "counter", "gauge", "event", "hist")
_FIELDS = frozenset(EVENT_SCHEMA["properties"])


def _fail(message: str) -> None:
    raise TelemetryError(f"invalid telemetry record: {message}")


def validate_record(record: Any) -> Dict[str, Any]:
    """Check one record against :data:`EVENT_SCHEMA`; return it.

    Raises :class:`~repro.errors.TelemetryError` naming the first
    violation.  The checks mirror the schema clause by clause.
    """
    if not isinstance(record, dict):
        _fail(f"expected an object, got {type(record).__name__}")
    unknown = set(record) - _FIELDS
    if unknown:
        _fail(f"unknown fields {sorted(unknown)}")
    for field in ("run_id", "seq", "ts", "kind", "name"):
        if field not in record:
            _fail(f"missing required field {field!r}")
    if not isinstance(record["run_id"], str) or not _RUN_ID_RE.match(
        record["run_id"]
    ):
        _fail(f"run_id {record['run_id']!r} is not 12 hex digits")
    if not isinstance(record["seq"], int) or isinstance(
        record["seq"], bool
    ) or record["seq"] < 0:
        _fail(f"seq {record['seq']!r} is not a non-negative integer")
    if not isinstance(record["ts"], (int, float)) or record["ts"] < 0:
        _fail(f"ts {record['ts']!r} is not a non-negative number")
    kind = record["kind"]
    if kind not in _KINDS:
        _fail(f"kind {kind!r} not one of {_KINDS}")
    if not isinstance(record["name"], str) or not record["name"]:
        _fail("name must be a non-empty string")
    if "duration_s" in record and (
        not isinstance(record["duration_s"], (int, float))
        or record["duration_s"] < 0
    ):
        _fail(f"duration_s {record['duration_s']!r} invalid")
    if "value" in record and not isinstance(
        record["value"], (int, float)
    ):
        _fail(f"value {record['value']!r} is not a number")
    if "worker" in record and (
        not isinstance(record["worker"], int) or record["worker"] < 0
    ):
        _fail(f"worker {record['worker']!r} invalid")
    if "trace_id" in record and (
        not isinstance(record["trace_id"], str)
        or not _TRACE_ID_RE.match(record["trace_id"])
    ):
        _fail(f"trace_id {record['trace_id']!r} is not 16 hex digits")
    for field in ("span_id", "parent_span_id"):
        if field in record and (
            not isinstance(record[field], str)
            or not _SPAN_ID_RE.match(record[field])
        ):
            _fail(f"{field} {record[field]!r} is not a hex string")
    if "attrs" in record and not isinstance(record["attrs"], dict):
        _fail("attrs must be an object")
    if kind == "span" and "duration_s" not in record:
        _fail("span record without duration_s")
    if kind in ("counter", "gauge", "hist") and "value" not in record:
        _fail(f"{kind} record without value")
    return record


def validate_records(records: Iterable[Any]) -> int:
    """Validate every record; returns how many were checked."""
    count = 0
    for record in records:
        validate_record(record)
        count += 1
    return count


def load_trace(path: str) -> list:
    """Parse a JSONL trace file into a list of record dicts.

    Strict: raises :class:`~repro.errors.TelemetryError` on the first
    malformed line.  Use :func:`load_trace_tolerant` when a truncated
    or crash-interrupted trace must still be readable.
    """
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise TelemetryError(
                    f"{path}:{line_no}: not valid JSON ({error})"
                ) from error
    return records


def load_trace_tolerant(path: str) -> "tuple[list, int]":
    """Parse a JSONL trace file, skipping malformed lines.

    Returns ``(records, skipped)``.  A crashed run leaves a truncated
    final line; a summarize/validate of the surviving records is far
    more useful than a parse error, so malformed lines are counted and
    dropped rather than fatal.
    """
    records = []
    skipped = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if not isinstance(record, dict):
                skipped += 1
                continue
            records.append(record)
    return records, skipped


def validate_file(path: Union[str, "object"]) -> int:
    """Validate a whole JSONL trace file; returns the record count.

    Unparseable lines are skipped (they are reported separately by
    :func:`load_trace_tolerant` callers); parseable records that break
    the schema still raise.
    """
    records, _skipped = load_trace_tolerant(str(path))
    for index, record in enumerate(records):
        try:
            validate_record(record)
        except TelemetryError as error:
            raise TelemetryError(f"{path}: record {index}: {error}") from error
    return len(records)
