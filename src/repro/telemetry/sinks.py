"""Telemetry sinks: where event records go.

Records are plain dicts (see :mod:`repro.telemetry.schema`); a sink's job
is transport only.  Two implementations:

* :class:`JsonlSink` — one JSON object per line, appended to a file
  (``-`` streams to stderr).  Lines are written and flushed per record so
  a crashed run still leaves a readable prefix.
* :class:`MemorySink` — records kept in a list, for tests and for the
  per-worker capture of the parallel corpus runner.
"""

from __future__ import annotations

import io
import json
import sys
from typing import Any, Dict, List, Optional


class Sink:
    """Interface: accepts event records, owns its transport."""

    def write(self, record: Dict[str, Any]) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        return None

    def close(self) -> None:
        return None


class MemorySink(Sink):
    """Buffers records in memory (tests, worker capture)."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def write(self, record: Dict[str, Any]) -> None:
        self.records.append(record)

    def clear(self) -> None:
        self.records.clear()


class JsonlSink(Sink):
    """Appends one compact JSON object per line to a file or stderr."""

    def __init__(self, target: str):
        self.target = target
        self._owns_stream = target != "-"
        self._stream: Optional[io.TextIOBase] = None

    def _ensure_stream(self) -> io.TextIOBase:
        if self._stream is None:
            if self.target == "-":
                self._stream = sys.stderr
            else:
                self._stream = open(self.target, "a", encoding="utf-8")
        return self._stream

    def write(self, record: Dict[str, Any]) -> None:
        stream = self._ensure_stream()
        stream.write(json.dumps(record, separators=(",", ":"),
                                sort_keys=False) + "\n")
        stream.flush()

    def flush(self) -> None:
        if self._stream is not None:
            self._stream.flush()

    def close(self) -> None:
        if self._stream is not None and self._owns_stream:
            self._stream.close()
        self._stream = None
