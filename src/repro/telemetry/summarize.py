"""Render a JSONL telemetry trace as a span tree and counter tables.

The ``repro telemetry summarize`` subcommand ends here: records are
grouped by kind, spans aggregate by path into an indented call tree
(count, total and mean duration), counters and gauges become tables.  The
renderer is pure — it takes records and returns a string — so tests and
notebooks can call it directly.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Any, Dict, Iterable, List, Tuple

from .hist import merge_all, quantile
from .schema import load_trace_tolerant


def percentile(values: "List[float]", q: float) -> float:
    """The ``q``-th percentile of ``values`` (linear interpolation).

    Matches ``numpy.percentile``'s default method, dependency-free so
    trace tooling and the serving layer's SLO accounting share one
    definition.  Raises :class:`ValueError` on an empty sequence.
    """
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile {q!r} outside [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return float(ordered[low] + (ordered[high] - ordered[low]) * fraction)


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:8.3f}ms"
    return f"{seconds * 1e6:8.1f}us"


def _attrs_label(attrs: Dict[str, Any]) -> str:
    return " ".join(f"{key}={value}" for key, value in sorted(attrs.items()))


def summarize_spans(records: Iterable[Dict[str, Any]]) -> str:
    """The indented span tree: per-path count, total and mean duration."""
    stats: "OrderedDict[str, List[float]]" = OrderedDict()
    for record in records:
        if record.get("kind") != "span":
            continue
        path = record["name"]
        stats.setdefault(path, []).append(float(record["duration_s"]))
    if not stats:
        return "(no spans)"
    lines = [f"{'span':<52s} {'count':>6s} {'total':>10s} {'mean':>10s}"]
    for path in sorted(stats):
        durations = stats[path]
        depth = path.count("/")
        label = "  " * depth + path.rsplit("/", 1)[-1]
        total = sum(durations)
        lines.append(
            f"{label:<52s} {len(durations):>6d} "
            f"{_format_seconds(total)} "
            f"{_format_seconds(total / len(durations))}"
        )
    return "\n".join(lines)


def _bucket_totals(
    records: Iterable[Dict[str, Any]], kind: str
) -> "OrderedDict[Tuple[str, str], float]":
    totals: "OrderedDict[Tuple[str, str], float]" = OrderedDict()
    for record in records:
        if record.get("kind") != kind:
            continue
        attrs = {
            key: value
            for key, value in record.get("attrs", {}).items()
            # gauge records fold their aggregation summary into attrs;
            # drop it from the bucket label so samples group correctly.
            if key not in ("min", "max", "mean", "count")
        }
        key = (record["name"], _attrs_label(attrs))
        if kind == "counter":
            totals[key] = totals.get(key, 0) + record["value"]
        else:
            totals[key] = record["value"]  # gauge: last value wins
    return totals


def summarize_counters(records: Iterable[Dict[str, Any]]) -> str:
    """Counter totals summed across flushes and workers."""
    totals = _bucket_totals(records, "counter")
    if not totals:
        return "(no counters)"
    lines = [f"{'counter':<44s} {'attrs':<24s} {'total':>14s}"]
    for (name, attrs) in sorted(totals):
        value = totals[(name, attrs)]
        rendered = f"{value:g}" if isinstance(value, float) else str(value)
        lines.append(f"{name:<44s} {attrs:<24s} {rendered:>14s}")
    return "\n".join(lines)


def summarize_gauges(records: Iterable[Dict[str, Any]]) -> str:
    """Gauge last-values (one row per name/attrs bucket)."""
    totals = _bucket_totals(records, "gauge")
    if not totals:
        return "(no gauges)"
    lines = [f"{'gauge':<44s} {'attrs':<24s} {'last':>14s}"]
    for (name, attrs) in sorted(totals):
        lines.append(
            f"{name:<44s} {attrs:<24s} {totals[(name, attrs)]:>14g}"
        )
    return "\n".join(lines)


def summarize_latencies(records: Iterable[Dict[str, Any]]) -> str:
    """Per-span-path latency percentiles (p50/p95/p99 of durations).

    The SLO view of a trace: where ``summarize_spans`` answers "where
    did the time go in total", this answers "how long did one occurrence
    take at the median and at the tail" — the serving layer's
    ``serving.enqueue``/``serving.execute`` spans read directly as
    queueing and service-time SLOs.
    """
    stats: "OrderedDict[str, List[float]]" = OrderedDict()
    for record in records:
        if record.get("kind") != "span":
            continue
        stats.setdefault(record["name"], []).append(
            float(record["duration_s"])
        )
    if not stats:
        return "(no spans)"
    lines = [
        f"{'span':<44s} {'count':>6s} {'p50':>10s} {'p95':>10s} "
        f"{'p99':>10s}"
    ]
    for path in sorted(stats):
        durations = stats[path]
        lines.append(
            f"{path:<44s} {len(durations):>6d} "
            f"{_format_seconds(percentile(durations, 50))} "
            f"{_format_seconds(percentile(durations, 95))} "
            f"{_format_seconds(percentile(durations, 99))}"
        )
    return "\n".join(lines)


def summarize_schedule_passes(records: Iterable[Dict[str, Any]]) -> str:
    """Per-pass rollup of the scheduling pipeline's telemetry.

    Groups every ``schedule.pass.*`` span by its pass token and scheme:
    how often the pass ran, how much scheduling time it took, and how
    many tiles it executed versus resumed from the per-pass artifact
    cache (the incremental-rescheduling hit rate, per pass).  Returns
    ``""`` when the trace has no pass spans (pre-pipeline traces and
    non-scheduling runs omit the section entirely).
    """
    stats: "OrderedDict[Tuple[str, str], Dict[str, float]]" = OrderedDict()
    for record in records:
        if record.get("kind") != "span":
            continue
        name = record.get("name", "")
        tail = name.rsplit("/", 1)[-1]
        if not tail.startswith("schedule.pass."):
            continue
        attrs = record.get("attrs", {})
        key = (str(attrs.get("token", tail)), str(attrs.get("scheme", "?")))
        bucket = stats.setdefault(
            key, {"count": 0, "seconds": 0.0, "tiles": 0, "resumed": 0}
        )
        bucket["count"] += 1
        bucket["seconds"] += float(record.get("duration_s", 0.0))
        bucket["tiles"] += int(attrs.get("tiles", 0))
        bucket["resumed"] += int(attrs.get("resumed", 0))
    if not stats:
        return ""
    lines = [
        f"{'pass':<22s} {'scheme':<14s} {'runs':>6s} {'tiles':>7s} "
        f"{'resumed':>8s} {'total':>10s}"
    ]
    for (token, scheme) in sorted(stats):
        bucket = stats[(token, scheme)]
        lines.append(
            f"{token:<22s} {scheme:<14s} {bucket['count']:>6d} "
            f"{bucket['tiles']:>7d} {bucket['resumed']:>8d} "
            f"{_format_seconds(bucket['seconds'])}"
        )
    return "\n".join(lines)


def summarize_cluster_devices(records: Iterable[Dict[str, Any]]) -> str:
    """Per-device rollup of the cluster layer's telemetry.

    Groups every ``cluster.*`` counter and ``cluster.device.*`` gauge by
    its ``device`` attribute into one row per device — the trace-side
    mirror of ``repro cluster status``.  Returns ``""`` when the trace
    has no per-device cluster records (the section is omitted entirely
    for non-cluster traces).
    """
    counters: Dict[str, Dict[str, float]] = {}
    gauges: Dict[str, Dict[str, float]] = {}
    for record in records:
        name = record.get("name", "")
        device = record.get("attrs", {}).get("device")
        if device is None or not name.startswith("cluster."):
            continue
        if record.get("kind") == "counter":
            bucket = counters.setdefault(str(device), {})
            bucket[name] = bucket.get(name, 0) + record["value"]
        elif record.get("kind") == "gauge":
            gauges.setdefault(str(device), {})[name] = record["value"]
    devices = sorted(set(counters) | set(gauges))
    if not devices:
        return ""
    lines = [
        f"{'device':<10s} {'routed':>7s} {'done':>6s} {'retry':>6s} "
        f"{'hedge':>6s} {'failover':>9s} {'failures':>9s} "
        f"{'ewma_ms':>9s}"
    ]
    for device in devices:
        counts = counters.get(device, {})
        last = gauges.get(device, {})
        ewma = last.get("cluster.device.ewma_latency_ms")
        lines.append(
            f"{device:<10s} "
            f"{counts.get('cluster.routed', 0):>7g} "
            f"{counts.get('cluster.completed', 0):>6g} "
            f"{counts.get('cluster.retry', 0):>6g} "
            f"{counts.get('cluster.hedge', 0):>6g} "
            f"{counts.get('cluster.failover', 0):>9g} "
            f"{last.get('cluster.device.failures', 0):>9g} "
            f"{ewma if ewma is not None else '-':>9}"
        )
    return "\n".join(lines)


def summarize_tenants(records: Iterable[Dict[str, Any]]) -> str:
    """Per-tenant rollup of the serving layer's multi-tenant telemetry.

    Groups every ``serving.tenant.*`` counter by its ``tenant``
    attribute into one row per tenant — admissions, completions, sheds,
    expiries, errors — and folds in the per-tenant latency histograms
    (``serving.tenant.latency_ms`` / ``cluster.tenant.latency_ms``) for
    p50/p99 columns.  Returns ``""`` when the trace carries no tenant
    records (single-tenant traces predating the tenancy layer omit the
    section entirely).
    """
    counters: Dict[str, Dict[str, float]] = {}
    hists: Dict[str, List[Dict[str, Any]]] = {}
    for record in records:
        name = record.get("name", "")
        if ".tenant." not in name:
            continue
        tenant = record.get("attrs", {}).get("tenant")
        if tenant is None:
            continue
        short = name.split(".tenant.", 1)[1]
        if record.get("kind") == "counter":
            bucket = counters.setdefault(str(tenant), {})
            bucket[short] = bucket.get(short, 0) + record["value"]
        elif record.get("kind") == "hist" and short == "latency_ms":
            hists.setdefault(str(tenant), []).append(record["attrs"])
    tenants = sorted(set(counters) | set(hists))
    if not tenants:
        return ""
    lines = [
        f"{'tenant':<16s} {'accepted':>9s} {'done':>7s} {'shed':>6s} "
        f"{'expired':>8s} {'errors':>7s} {'p50_ms':>9s} {'p99_ms':>9s}"
    ]
    for tenant in tenants:
        counts = counters.get(tenant, {})
        snaps = hists.get(tenant)
        if snaps:
            merged = merge_all(snaps)
            p50 = f"{quantile(merged, 50):>9.3f}"
            p99 = f"{quantile(merged, 99):>9.3f}"
        else:
            p50 = p99 = f"{'-':>9s}"
        accepted = counts.get("accepted", 0)
        if "final.accepted" in counts:
            accepted = max(accepted, counts["final.accepted"])
        lines.append(
            f"{tenant:<16s} {accepted:>9g} "
            f"{counts.get('completed', 0):>7g} "
            f"{counts.get('shed', 0):>6g} "
            f"{counts.get('expired', 0):>8g} "
            f"{counts.get('errors', 0):>7g} {p50} {p99}"
        )
    return "\n".join(lines)


def summarize_fidelity(records: Iterable[Dict[str, Any]]) -> str:
    """Estimator fast-path and audit rollup for a tiered-fidelity trace.

    Collects the estimator's prediction counters, the serving layer's
    audit sample/violation counters and the audit error gauges into one
    short table.  Returns ``""`` when the trace has no estimator or
    audit records (exact-only traces omit the section entirely).
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    for record in records:
        name = record.get("name", "")
        if not (name.startswith("estimator.")
                or name.startswith("serving.audit")
                or name.startswith("cluster.audit")):
            continue
        if record.get("kind") == "counter":
            counters[name] = counters.get(name, 0) + record["value"]
        elif record.get("kind") == "gauge":
            gauges[name] = record["value"]
    if not counters and not gauges:
        return ""
    lines = [f"{'metric':<44s} {'value':>14s}"]
    for name in sorted(counters):
        lines.append(f"{name:<44s} {counters[name]:>14g}")
    for name in sorted(gauges):
        lines.append(f"{name:<44s} {gauges[name]:>14g}")
    return "\n".join(lines)


def summarize_histograms(records: Iterable[Dict[str, Any]]) -> str:
    """Log-bucketed histogram rollup: merged snapshots per name/attrs.

    Multiple flushes (and multiple workers) of the same histogram merge
    exactly — bucket counts add — so the percentiles below describe the
    whole trace, not the last flush.  Returns ``""`` when the trace has
    no ``hist`` records.
    """
    snaps: "OrderedDict[Tuple[str, str], List[Dict[str, Any]]]" = OrderedDict()
    for record in records:
        if record.get("kind") != "hist":
            continue
        attrs = record.get("attrs", {})
        labels = {
            key: value for key, value in attrs.items()
            if key not in ("buckets", "count", "sum", "min", "max", "growth")
        }
        key = (record["name"], _attrs_label(labels))
        snaps.setdefault(key, []).append(attrs)
    if not snaps:
        return ""
    lines = [
        f"{'histogram':<36s} {'attrs':<16s} {'count':>7s} {'p50':>9s} "
        f"{'p95':>9s} {'p99':>9s} {'max':>9s}"
    ]
    for (name, attrs) in sorted(snaps):
        merged = merge_all(snaps[(name, attrs)])
        lines.append(
            f"{name:<36s} {attrs:<16s} {merged['count']:>7d} "
            f"{quantile(merged, 50):>9.3f} {quantile(merged, 95):>9.3f} "
            f"{quantile(merged, 99):>9.3f} {merged['max']:>9.3f}"
        )
    return "\n".join(lines)


def summarize_slo(records: Iterable[Dict[str, Any]]) -> str:
    """SLO burn-rate gauges per class and window.

    Reads the ``serving.slo.*``/``cluster.slo.*`` gauges the burn-rate
    monitor flushes and renders one row per SLO class: good/bad totals
    and the error-budget burn in each rolling window (burn > 1 means
    the budget is being consumed faster than it accrues).  Returns
    ``""`` when the trace carries no SLO gauges.
    """
    by_class: "OrderedDict[str, Dict[str, float]]" = OrderedDict()
    for record in records:
        name = record.get("name", "")
        if record.get("kind") != "gauge" or ".slo." not in name:
            continue
        attrs = record.get("attrs", {})
        slo_class = str(attrs.get("slo_class", "?"))
        bucket = by_class.setdefault(slo_class, {})
        metric = name.split(".slo.", 1)[1]
        if metric == "burn_rate":
            window = attrs.get("window_s")
            bucket[f"burn_{window:g}s" if window else "burn"] = record["value"]
        else:
            bucket[metric] = record["value"]
    if not by_class:
        return ""
    windows = sorted({
        key for bucket in by_class.values() for key in bucket
        if key.startswith("burn_")
    }, key=lambda k: float(k[5:-1]))
    header = f"{'class':<14s} {'good':>8s} {'bad':>8s} {'budget':>8s}"
    for window in windows:
        header += f" {window[5:]:>12s}"
    lines = [header]
    for slo_class in sorted(by_class):
        bucket = by_class[slo_class]
        row = (
            f"{slo_class:<14s} {bucket.get('good', 0):>8g} "
            f"{bucket.get('bad', 0):>8g} "
            f"{bucket.get('error_budget', 0):>8g}"
        )
        for window in windows:
            value = bucket.get(window)
            row += f" {value:>12.3f}" if value is not None else f" {'-':>12s}"
        lines.append(row)
    return "\n".join(lines)


def summarize_traces(records: Iterable[Dict[str, Any]]) -> str:
    """Request-trace rollup: tree sizes, roots, and link-event counts.

    A health check of the tracing layer itself: how many request trees
    the trace contains, whether each has exactly one root, and how many
    coalesce/hedge/batch link events tie extra requests in.  Returns
    ``""`` for untraced runs.
    """
    spans_by_trace: Dict[str, int] = {}
    roots_by_trace: Dict[str, int] = {}
    links: Dict[str, int] = {}
    for record in records:
        trace_id = record.get("trace_id")
        if trace_id is None:
            continue
        if record.get("kind") == "span":
            spans_by_trace[trace_id] = spans_by_trace.get(trace_id, 0) + 1
            if "parent_span_id" not in record:
                roots_by_trace[trace_id] = roots_by_trace.get(trace_id, 0) + 1
        elif record.get("kind") == "event":
            kind = str(record.get("attrs", {}).get("kind", "?"))
            links[kind] = links.get(kind, 0) + 1
    if not spans_by_trace:
        return ""
    sizes = sorted(spans_by_trace.values())
    rootless = sum(
        1 for trace_id in spans_by_trace if not roots_by_trace.get(trace_id)
    )
    multi_root = sum(1 for count in roots_by_trace.values() if count > 1)
    lines = [
        f"traces: {len(spans_by_trace)}  "
        f"spans/trace p50: {percentile([float(s) for s in sizes], 50):g}  "
        f"max: {sizes[-1]}",
        f"roots: ok={len(spans_by_trace) - rootless - multi_root} "
        f"missing={rootless} multiple={multi_root}",
    ]
    if links:
        rendered = "  ".join(
            f"{kind}={links[kind]}" for kind in sorted(links)
        )
        lines.append(f"link events: {rendered}")
    return "\n".join(lines)


def summarize_records(records: List[Dict[str, Any]]) -> str:
    """The full ``repro telemetry summarize`` report for one trace."""
    run_ids = sorted({r.get("run_id", "?") for r in records})
    workers = sorted(
        {r["worker"] for r in records if "worker" in r}
    )
    header = [
        f"records: {len(records)}",
        f"runs: {', '.join(run_ids) if run_ids else '(none)'}",
    ]
    if workers:
        header.append(f"workers: {len(workers)}")
    has_spans = any(r.get("kind") == "span" for r in records)
    sections = [
        "  ".join(header),
        "",
        "spans",
        "-----",
        summarize_spans(records),
    ]
    # The percentile view restates span durations; a span-free trace
    # would just repeat "(no spans)", so the section is skipped cleanly.
    if has_spans:
        sections += [
            "",
            "latency percentiles",
            "-------------------",
            summarize_latencies(records),
        ]
    sections += [
        "",
        "counters",
        "--------",
        summarize_counters(records),
        "",
        "gauges",
        "------",
        summarize_gauges(records),
    ]
    pass_section = summarize_schedule_passes(records)
    if pass_section:
        sections += [
            "",
            "schedule passes",
            "---------------",
            pass_section,
        ]
    hist_section = summarize_histograms(records)
    if hist_section:
        sections += [
            "",
            "histograms",
            "----------",
            hist_section,
        ]
    slo_section = summarize_slo(records)
    if slo_section:
        sections += [
            "",
            "slo burn rates",
            "--------------",
            slo_section,
        ]
    trace_section = summarize_traces(records)
    if trace_section:
        sections += [
            "",
            "request traces",
            "--------------",
            trace_section,
        ]
    tenant_section = summarize_tenants(records)
    if tenant_section:
        sections += [
            "",
            "tenants",
            "-------",
            tenant_section,
        ]
    cluster_section = summarize_cluster_devices(records)
    if cluster_section:
        sections += [
            "",
            "cluster devices",
            "---------------",
            cluster_section,
        ]
    fidelity_section = summarize_fidelity(records)
    if fidelity_section:
        sections += [
            "",
            "fidelity / audit",
            "----------------",
            fidelity_section,
        ]
    return "\n".join(sections)


def summarize_file(path: str) -> str:
    """Load a JSONL trace (tolerantly) and render the summary report.

    Malformed lines — the tail of a crashed run — are skipped with a
    counted warning at the top of the report instead of a parse error.
    """
    records, skipped = load_trace_tolerant(path)
    report = summarize_records(records)
    if skipped:
        report = (
            f"warning: skipped {skipped} malformed line(s)\n\n" + report
        )
    return report


def render_top(records: List[Dict[str, Any]]) -> str:
    """One ``repro top`` frame: the live-dashboard view of a trace.

    A compact, screen-sized rollup — request counts by outcome, latency
    histogram percentiles, SLO burn, device table — designed to be
    re-rendered in place as the trace file grows.
    """
    outcomes: Dict[str, float] = {}
    for record in records:
        if record.get("kind") != "counter":
            continue
        name = record.get("name", "")
        for prefix in ("serving.", "cluster."):
            if name.startswith(prefix):
                short = name[len(prefix):]
                if short in ("accepted", "fulfilled", "coalesced", "shed",
                             "expired", "rejected", "errors", "completed",
                             "retry", "hedge", "failover"):
                    outcomes[short] = outcomes.get(short, 0) + record["value"]
    lines = ["repro top — trace rollup", ""]
    if outcomes:
        lines.append("requests: " + "  ".join(
            f"{name}={outcomes[name]:g}" for name in sorted(outcomes)
        ))
        lines.append("")
    for title, section in (
        ("histograms", summarize_histograms(records)),
        ("slo burn rates", summarize_slo(records)),
        ("tenants", summarize_tenants(records)),
        ("request traces", summarize_traces(records)),
        ("cluster devices", summarize_cluster_devices(records)),
    ):
        if section:
            lines += [title, "-" * len(title), section, ""]
    if len(lines) == 2:
        lines.append("(no serving/cluster records yet)")
    return "\n".join(lines).rstrip() + "\n"


def schema_json() -> str:
    """The event record schema, pretty-printed (for external tooling)."""
    from .schema import EVENT_SCHEMA

    return json.dumps(EVENT_SCHEMA, indent=2)
