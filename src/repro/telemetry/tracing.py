"""Request-scoped trace contexts: one causal tree per request.

A :class:`TraceContext` names a position in one request's causal tree:
the ``trace_id`` every record of the request shares, and the
``span_id`` of the span that is the *current parent* — any span opened
while the context is active becomes that span's child.  Contexts are
immutable; descending into a child span produces a new context.

Propagation is two-mode, matching how requests actually move:

* **within a thread** — a :mod:`contextvars` variable holds the active
  context.  :class:`~repro.telemetry.core.Span` reads it on ``__enter__``
  (allocating its own span id and installing a child context) and
  restores it on ``__exit__``, so ordinary nested spans chain with zero
  call-site changes.
* **across threads and layers** — the context rides explicitly on
  :class:`~repro.serving.request.SpMVRequest` (and the engine's queue
  entries), because serving workers do not inherit the submitter's
  contextvars.  A worker re-enters the request's tree with
  :func:`scope` before touching the pipeline.

The root of each tree is the *request span* (``serving.request`` /
``cluster.request``), emitted by whichever layer created the trace when
the request resolves.  Coalesced followers, hedged duplicates and
micro-batch members keep their causal relationship through ``trace.link``
events (see :meth:`~repro.telemetry.core.Telemetry.event`).

Sampling is governed by ``REPRO_TRACE_SAMPLE`` (fraction of requests
traced, default 1.0 — every request — when telemetry is enabled;
tracing is always off when telemetry is disabled).  The draw is
deterministic in the request id so replays trace the same subset.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import uuid
from dataclasses import dataclass
from typing import Any, Optional

TRACE_SAMPLE_ENV = "REPRO_TRACE_SAMPLE"

#: Default sampling fraction: trace every request (telemetry must
#: already be enabled for tracing to do anything at all).
DEFAULT_TRACE_SAMPLE = 1.0

#: Process-wide span id source.  Span ids only need to be unique within
#: one process's records (parent references never cross processes).
_SPAN_IDS = itertools.count(1)

#: The active trace context of the current thread (``None`` = untraced).
_CURRENT: "contextvars.ContextVar[Optional[TraceContext]]" = (
    contextvars.ContextVar("repro_trace_context", default=None)
)

#: Knuth multiplicative hash constant for the deterministic sample draw.
_HASH_MULT = 2654435761
_HASH_MOD = 2 ** 32


@dataclass(frozen=True)
class TraceContext:
    """One position in a request's causal tree (immutable)."""

    #: 16-hex id shared by every record of one request's tree.
    trace_id: str
    #: The span that parents anything opened under this context.  For a
    #: freshly started trace this is the *root* span's id — the request
    #: span emitted when the request resolves.
    span_id: str

    def child(self, span_id: str) -> "TraceContext":
        """The context a child span installs while it is open."""
        return TraceContext(self.trace_id, span_id)


def new_trace_id() -> str:
    """A fresh 16-hex trace id."""
    return uuid.uuid4().hex[:16]


def new_span_id() -> str:
    """A fresh span id (unique within this process)."""
    return f"{next(_SPAN_IDS):012x}"


def start_trace() -> TraceContext:
    """A root context: fresh trace id, fresh root span id."""
    return TraceContext(new_trace_id(), new_span_id())


def current() -> Optional[TraceContext]:
    """The active context of this thread (``None`` when untraced)."""
    return _CURRENT.get()


#: Public alias: ``telemetry.current_trace()`` reads better at call sites.
current_trace = current


def activate(context: Optional[TraceContext]) -> Any:
    """Install ``context`` as active; returns the restore token."""
    return _CURRENT.set(context)


def restore(token: Any) -> None:
    """Undo one :func:`activate`."""
    _CURRENT.reset(token)


class scope:
    """Context manager installing a trace context for a block.

    ``scope(None)`` is an explicit no-op — call sites can pass an
    optional context through without branching.
    """

    __slots__ = ("_context", "_token")

    def __init__(self, context: Optional[TraceContext]):
        self._context = context
        self._token = None

    def __enter__(self) -> Optional[TraceContext]:
        if self._context is not None:
            self._token = _CURRENT.set(self._context)
        return self._context

    def __exit__(self, *_exc: Any) -> None:
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None


def resolve_trace_sample(
    value: Optional[float] = None, default: float = DEFAULT_TRACE_SAMPLE
) -> float:
    """Resolve the trace sampling fraction: explicit > env > default.

    Clamped to [0, 1]; an unparseable or non-finite environment value
    warns once and falls back, the serving-knob convention.
    """
    from . import core  # function-local: core imports this module

    if value is not None:
        return min(max(float(value), 0.0), 1.0)
    raw = os.environ.get(TRACE_SAMPLE_ENV)
    if raw is not None and raw.strip():
        try:
            parsed = float(raw)
        except ValueError:
            parsed = None
        if parsed is None or parsed != parsed or parsed in (
            float("inf"), float("-inf"),
        ):
            core.warn_once(
                "invalid_trace_sample",
                f"{TRACE_SAMPLE_ENV}={raw!r} is not a finite float; "
                f"using {default}",
            )
            return default
        return min(max(parsed, 0.0), 1.0)
    return default


def sample_draw(request_id: int) -> float:
    """Deterministic uniform draw in [0, 1) from a request id."""
    return ((request_id * _HASH_MULT) % _HASH_MOD) / _HASH_MOD


def maybe_start_trace(
    request_id: int, sample: Optional[float] = None
) -> Optional[TraceContext]:
    """Start a root context for a request, or ``None`` when untraced.

    Untraced means: telemetry disabled (no records would ever be
    emitted), or the request's deterministic draw falls outside the
    sampling fraction.
    """
    from . import core  # function-local: core imports this module

    if not core.get().enabled:
        return None
    rate = resolve_trace_sample(sample)
    if rate <= 0.0:
        return None
    if rate < 1.0 and sample_draw(request_id) >= rate:
        return None
    return start_trace()
