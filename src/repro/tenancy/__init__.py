"""Multi-tenant QoS primitives: tenant identity, weights, fair queueing.

The serving layer treats the *tenant* as the unit of fairness: every
request carries a tenant id (``default`` when unset), the admission
queue dispatches deficit-round-robin over configured tenant weights,
quotas cap any one tenant's queue share, and overload shedding charges
the tenant over its fair share instead of whoever pushed last.  See
``docs/multitenancy.md``.
"""

from .fair_queue import FairAdmissionQueue, entry_tenant
from .tenant import (
    BURN_SHED_ENV,
    DEFAULT_BURN_SHED,
    DEFAULT_QUOTA_FRACTION,
    DEFAULT_TENANT,
    DEFAULT_WEIGHT,
    MIN_WEIGHT,
    QUOTA_ENV,
    TenantPolicy,
    WEIGHTS_ENV,
    normalize_tenant,
    parse_tenant_weights,
    policy_from_env,
    tenant_burn_shed_threshold,
    tenant_quota_fraction,
)

__all__ = [
    "BURN_SHED_ENV",
    "DEFAULT_BURN_SHED",
    "DEFAULT_QUOTA_FRACTION",
    "DEFAULT_TENANT",
    "DEFAULT_WEIGHT",
    "FairAdmissionQueue",
    "MIN_WEIGHT",
    "QUOTA_ENV",
    "TenantPolicy",
    "WEIGHTS_ENV",
    "entry_tenant",
    "normalize_tenant",
    "parse_tenant_weights",
    "policy_from_env",
    "tenant_burn_shed_threshold",
    "tenant_quota_fraction",
]
