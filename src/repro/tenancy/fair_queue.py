"""The weighted-fair admission queue: deficit round-robin per tenant.

Drop-in replacement for :class:`repro.serving.queue.AdmissionQueue`
(same ``push``/``pop``/``pop_group``/``reprioritize``/``drain``
contract, same ``(admitted, displaced, expired)`` push result) that
schedules *per tenant*:

* **ordering** — each tenant keeps its own strict-priority subqueue
  (ties FIFO, exactly the global queue's rule); *between* tenants,
  dispatch follows deficit round-robin over the policy weights: every
  visit credits a tenant its weight, one credit buys one dispatch, and
  unspent credit carries over — so over any busy interval tenants are
  served in proportion to their weights and no non-empty tenant ever
  starves (every round adds at least :data:`~repro.tenancy.tenant
  .MIN_WEIGHT`).
* **expiry** — unchanged: lazily purged on push-needing-room and on
  pop, answered ``expired``.
* **shedding** — applied per tenant.  A push beyond the *tenant quota*
  sheds within that tenant only.  A push to a globally full queue
  charges the tenant with the largest weighted backlog
  (``queued / weight``, counting the incoming entry): if that is the
  pusher itself, the original displacement rule applies (admit only by
  outranking the tenant's worst entry); otherwise the over-share
  tenant's worst entry is displaced — overload lands on whoever is
  over their fair share, never on the victims of a flood.
* **SLO-class shedding** — when the queue's ``pressure`` hook reports
  the interactive error budget burning hot, batch-class entries become
  preferred victims: within the shed tenant, any batch entry sheds
  before any interactive one.  Cold (the default), victim choice is
  purely priority/recency — identical to the pre-tenancy policy.

With a single tenant at the default policy every rule above collapses
to the original global queue — pinned byte-for-byte by the
differential tests in ``tests/test_tenancy.py``.
"""

from __future__ import annotations

import bisect
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from .tenant import DEFAULT_TENANT, TenantPolicy

#: Default capacity, shared with the plain admission queue.
DEFAULT_CAPACITY = 256

_Key = Tuple[int, int]


def entry_tenant(entry: Any) -> str:
    """The tenant an entry is accounted under (``default`` if unset)."""
    return getattr(entry, "tenant", None) or DEFAULT_TENANT


class FairAdmissionQueue:
    """A bounded admission queue with per-tenant weighted fairness."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        policy: Optional[TenantPolicy] = None,
        pressure: Optional[Callable[[], bool]] = None,
    ):
        if capacity < 1:
            capacity = 1
        self.capacity = capacity
        self.policy = policy if policy is not None else TenantPolicy()
        #: Returns ``True`` while the interactive SLO burns hot; checked
        #: only on overload pushes, so it may be arbitrarily expensive.
        self._pressure = pressure
        #: tenant → subqueue sorted ascending by ``(-priority, seq)``.
        self._subqueues: Dict[str, List[Tuple[_Key, Any]]] = {}
        #: Non-empty tenants in round order (the DRR visiting order).
        self._active: List[str] = []
        self._credits: Dict[str, float] = {}
        self._rr = 0
        #: Whether the tenant at ``_rr`` already got this visit's quantum.
        self._credited = False
        self._size = 0
        #: tenant → dispatched-entry count (fairness introspection).
        self.served: Dict[str, int] = {}
        #: tenant → entries shed out of this queue (quota/displacement).
        self.shed: Dict[str, int] = {}
        self._cond = threading.Condition()

    def __len__(self) -> int:
        with self._cond:
            return self._size

    # -- keys ------------------------------------------------------------

    @staticmethod
    def _key(entry: Any) -> _Key:
        return (-entry.priority, entry.seq)

    @staticmethod
    def _shed_key(entry: Any, hot: bool) -> Tuple[int, int, int]:
        """Victim ordering: the *maximum* key sheds first.

        Cold, this is exactly the dispatch order reversed (lowest
        priority, newest submission loses).  Hot, batch-class entries
        rank above every interactive entry — the distinct per-class
        shedding policy.
        """
        rank = 1 if (hot and getattr(entry, "slo_class", None) == "batch") \
            else 0
        return (rank, -entry.priority, entry.seq)

    # -- bookkeeping (all hold the lock) ---------------------------------

    def _sub(self, tenant: str) -> List[Tuple[_Key, Any]]:
        return self._subqueues.get(tenant, [])

    def _insert(self, tenant: str, entry: Any) -> None:
        sub = self._subqueues.get(tenant)
        if sub is None:
            sub = self._subqueues[tenant] = []
        if not sub:
            # A newly busy tenant joins the end of the current round
            # with zero credit — it cannot burst past standing tenants.
            self._active.append(tenant)
        bisect.insort(sub, (self._key(entry), entry))
        self._size += 1

    def _remove_at(self, tenant: str, index: int) -> Any:
        sub = self._subqueues[tenant]
        _key, entry = sub.pop(index)
        self._size -= 1
        if not sub:
            self._deactivate(tenant)
        return entry

    def _deactivate(self, tenant: str) -> None:
        """Drop an emptied tenant from the round (credit resets)."""
        self._subqueues.pop(tenant, None)
        self._credits.pop(tenant, None)
        try:
            index = self._active.index(tenant)
        except ValueError:
            return
        self._active.pop(index)
        if index < self._rr:
            self._rr -= 1
        elif index == self._rr:
            self._credited = False
        self._rr = self._rr % len(self._active) if self._active else 0

    def _purge_expired(self, now: float) -> List[Any]:
        expired: List[Any] = []
        for tenant in list(self._subqueues):
            sub = self._subqueues[tenant]
            stale = [e for _k, e in sub if e.expired_at(now)]
            if not stale:
                continue
            kept = [(k, e) for k, e in sub if not e.expired_at(now)]
            self._size -= len(stale)
            expired.extend(stale)
            if kept:
                self._subqueues[tenant] = kept
            else:
                self._deactivate(tenant)
        return expired

    # -- shedding --------------------------------------------------------

    def _victim_tenant(self, pusher: str) -> str:
        """The tenant charged for a globally full queue.

        Largest weighted backlog (``queued / weight``) wins, counting
        the incoming entry against its own tenant; ties prefer the
        pusher (the conservative pre-tenancy rule), then the deeper
        backlog, then the lexicographically last name — all
        deterministic.
        """
        def load(tenant: str) -> Tuple[float, int, int, str]:
            depth = len(self._sub(tenant)) + (1 if tenant == pusher else 0)
            return (
                depth / self.policy.weight(tenant),
                1 if tenant == pusher else 0,
                depth,
                tenant,
            )

        tenants = list(self._subqueues)
        if pusher not in tenants:
            tenants.append(pusher)
        return max(tenants, key=load)

    def _shed_within(self, tenant: str, entry: Any,
                     hot: bool) -> Tuple[bool, Optional[Any]]:
        """Original displacement rule, scoped to one tenant.

        Returns ``(admitted, displaced)``: the incoming entry is
        admitted only by strictly outranking the tenant's worst entry,
        which is then displaced.
        """
        sub = self._sub(tenant)
        if not sub:
            return True, None
        worst = max(range(len(sub)),
                    key=lambda i: self._shed_key(sub[i][1], hot))
        if self._shed_key(entry, hot) < self._shed_key(sub[worst][1], hot):
            return True, self._remove_at(tenant, worst)
        return False, None

    def _evict_worst(self, tenant: str, hot: bool) -> Optional[Any]:
        """Unconditionally displace a tenant's worst entry."""
        sub = self._sub(tenant)
        if not sub:
            return None
        worst = max(range(len(sub)),
                    key=lambda i: self._shed_key(sub[i][1], hot))
        return self._remove_at(tenant, worst)

    # -- the queue contract ----------------------------------------------

    def push(
        self, entry: Any, now: Optional[float] = None
    ) -> Tuple[bool, Optional[Any], List[Any]]:
        """Admit ``entry`` under the per-tenant shedding policy.

        Same result shape as the global queue: ``(admitted, displaced,
        expired)``, with the caller owning the responses to displaced
        and expired entries.
        """
        if now is None:
            now = time.monotonic()
        tenant = entry_tenant(entry)
        quota = self.policy.quota(self.capacity)
        with self._cond:
            needs_room = (
                self._size >= self.capacity
                or len(self._sub(tenant)) >= quota
            )
            expired = self._purge_expired(now) if needs_room else []
            displaced = None
            over_quota = len(self._sub(tenant)) >= quota
            over_capacity = self._size >= self.capacity
            if over_quota or over_capacity:
                hot = bool(self._pressure()) if self._pressure else False
                victim_tenant = (
                    tenant if over_quota else self._victim_tenant(tenant)
                )
                if victim_tenant == tenant:
                    admitted, displaced = self._shed_within(
                        tenant, entry, hot
                    )
                    if not admitted:
                        self.shed[tenant] = self.shed.get(tenant, 0) + 1
                        return False, None, expired
                else:
                    displaced = self._evict_worst(victim_tenant, hot)
                if displaced is not None:
                    loser = entry_tenant(displaced)
                    self.shed[loser] = self.shed.get(loser, 0) + 1
            self._insert(tenant, entry)
            self._cond.notify()
            return True, displaced, expired

    def reprioritize(self, entry: Any, priority: int) -> bool:
        """Raise a queued entry's priority (see the global queue)."""
        with self._cond:
            if priority <= entry.priority:
                return True
            tenant = entry_tenant(entry)
            sub = self._sub(tenant)
            old = (self._key(entry), entry)
            index = bisect.bisect_left(sub, old)
            if index >= len(sub) or sub[index][1] is not entry:
                return False
            sub.pop(index)
            entry.priority = priority
            bisect.insort(sub, (self._key(entry), entry))
            return True

    def _pop_locked(self) -> Any:
        """One deficit-round-robin dispatch (``_size > 0`` assumed)."""
        while True:
            tenant = self._active[self._rr]
            if not self._credited:
                self._credits[tenant] = (
                    self._credits.get(tenant, 0.0)
                    + self.policy.weight(tenant)
                )
                self._credited = True
            if self._credits[tenant] >= 1.0:
                self._credits[tenant] -= 1.0
                entry = self._remove_at(tenant, 0)
                self.served[tenant] = self.served.get(tenant, 0) + 1
                return entry
            self._rr = (self._rr + 1) % len(self._active)
            self._credited = False

    def pop(
        self, timeout: Optional[float] = None
    ) -> Tuple[Optional[Any], List[Any]]:
        """The next fair-share entry, blocking up to ``timeout``."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                now = time.monotonic()
                expired = self._purge_expired(now) if self._size else []
                if self._size:
                    return self._pop_locked(), expired
                if expired:
                    return None, expired
                remaining = None if deadline is None else deadline - now
                if remaining is not None and remaining <= 0:
                    return None, []
                if not self._cond.wait(remaining):
                    return None, []

    def pop_group(
        self, matches: Callable[[Any], bool], limit: int
    ) -> List[Any]:
        """Up to ``limit`` matching entries, in global priority order.

        The engine's micro-batcher constrains ``matches`` to the batch
        leader's tenant, so batching amortises dispatch without letting
        one tenant's backlog ride along on another's turn.
        """
        if limit <= 0:
            return []
        taken: List[Any] = []
        with self._cond:
            everything = [
                (key, tenant, entry)
                for tenant, sub in self._subqueues.items()
                for key, entry in sub
            ]
            everything.sort(key=lambda item: item[0])
            for key, tenant, entry in everything:
                if len(taken) >= limit:
                    break
                if matches(entry):
                    sub = self._subqueues[tenant]
                    index = bisect.bisect_left(sub, (key, entry))
                    if index < len(sub) and sub[index][1] is entry:
                        self._remove_at(tenant, index)
                        taken.append(entry)
        return taken

    def drain(self) -> List[Any]:
        """Remove and return every queued entry (non-graceful path)."""
        with self._cond:
            items = sorted(
                (
                    (key, entry)
                    for sub in self._subqueues.values()
                    for key, entry in sub
                ),
                key=lambda item: item[0],
            )
            self._subqueues.clear()
            self._active.clear()
            self._credits.clear()
            self._rr = 0
            self._credited = False
            self._size = 0
            self._cond.notify_all()
            return [entry for _key, entry in items]

    def wake_all(self) -> None:
        """Wake blocked poppers (engine drain)."""
        with self._cond:
            self._cond.notify_all()

    # -- introspection ---------------------------------------------------

    def tenant_depth(self, tenant: str) -> int:
        """Queued entries of one tenant."""
        with self._cond:
            return len(self._sub(tenant))

    def tenant_depths(self) -> Dict[str, int]:
        """Queued entries per tenant (non-empty tenants only)."""
        with self._cond:
            return {
                tenant: len(sub)
                for tenant, sub in self._subqueues.items()
            }

    def tenant_quota(self) -> int:
        """The per-tenant entry cap under the current policy."""
        return self.policy.quota(self.capacity)

    def served_counts(self) -> Dict[str, int]:
        """Dispatched entries per tenant since construction."""
        with self._cond:
            return dict(self.served)
