"""Tenant identity and the per-tenant QoS policy knobs.

A *tenant* is the unit of fairness in the serving layer: every
:class:`~repro.serving.request.SpMVRequest` (and, by inheritance, every
session iteration) carries a tenant id, and the admission queue
schedules and sheds *per tenant* instead of globally.  Requests that
never mention a tenant belong to :data:`DEFAULT_TENANT` — with a single
tenant the weighted-fair queue degenerates to exactly the original
global policy, which is what keeps the single-tenant path byte-stable.

The policy itself is three numbers:

* **weights** (``REPRO_TENANT_WEIGHTS``, ``"name:weight,..."``) — the
  deficit-round-robin service shares.  A tenant absent from the map
  gets :data:`DEFAULT_WEIGHT`.
* **quota** (``REPRO_TENANT_QUOTA``, a fraction of queue capacity) —
  the hard cap on how much of the admission queue one tenant may
  occupy.  ``1.0`` (the default) disables the cap.
* **burn-shed threshold** (``REPRO_TENANT_BURN_SHED``) — when the
  interactive SLO class's fast-window burn rate exceeds this value,
  batch-class entries become preferred shed victims (see
  :mod:`repro.tenancy.fair_queue`).

All three follow the repo's warn-once fallback convention: garbage in
the environment logs one warning and falls back to the default, it
never raises.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from .. import telemetry

#: The tenant every request without an explicit tenant belongs to.
DEFAULT_TENANT = "default"

#: Weight of tenants not named in ``REPRO_TENANT_WEIGHTS``.
DEFAULT_WEIGHT = 1.0

#: Weights are clamped up to this floor so a mis-configured zero or
#: negative weight throttles a tenant instead of starving it forever
#: (deficit round-robin still visits it every round).
MIN_WEIGHT = 1e-3

WEIGHTS_ENV = "REPRO_TENANT_WEIGHTS"
QUOTA_ENV = "REPRO_TENANT_QUOTA"
BURN_SHED_ENV = "REPRO_TENANT_BURN_SHED"

#: Default quota fraction: one tenant may fill the whole queue (the
#: pre-tenancy behavior).
DEFAULT_QUOTA_FRACTION = 1.0

#: Default interactive fast-window burn rate above which batch-class
#: entries shed first.  1.0 = "spending the error budget exactly as
#: fast as it accrues" — the standard paging threshold.
DEFAULT_BURN_SHED = 1.0


def normalize_tenant(raw: Optional[str]) -> str:
    """Canonical tenant id: stripped, defaulted when empty/``None``."""
    if raw is None:
        return DEFAULT_TENANT
    tenant = str(raw).strip()
    return tenant if tenant else DEFAULT_TENANT


def parse_tenant_weights(raw: Optional[str] = None) -> Dict[str, float]:
    """Parse ``"alice:3,bob:1"`` into a weight map.

    With no argument, parses ``REPRO_TENANT_WEIGHTS`` from the
    environment.  Invalid input (bad syntax, non-numeric or
    non-positive weight) warns once and falls back to the empty map —
    every tenant then runs at :data:`DEFAULT_WEIGHT`, which is the safe
    degradation.
    """
    if raw is None:
        raw = os.environ.get(WEIGHTS_ENV)
    if not raw or not raw.strip():
        return {}
    weights: Dict[str, float] = {}
    for item in raw.split(","):
        item = item.strip()
        if not item:
            continue
        name, sep, value = item.partition(":")
        name = name.strip()
        if not sep or not name:
            telemetry.warn_once(
                "invalid_tenant_weights",
                f"{WEIGHTS_ENV}={raw!r} is not 'tenant:weight,...'; "
                f"falling back to uniform weights",
            )
            return {}
        try:
            weight = float(value)
        except ValueError:
            telemetry.warn_once(
                "invalid_tenant_weights",
                f"{WEIGHTS_ENV}={raw!r} has a non-numeric weight for "
                f"tenant {name!r}; falling back to uniform weights",
            )
            return {}
        if not math.isfinite(weight) or weight <= 0:
            telemetry.warn_once(
                "invalid_tenant_weights",
                f"{WEIGHTS_ENV}={raw!r} has a non-positive weight for "
                f"tenant {name!r}; falling back to uniform weights",
            )
            return {}
        weights[name] = weight
    return weights


def _float_env(env: str, default: float, warn_key: str,
               minimum: float, maximum: Optional[float] = None) -> float:
    """Float knob with the warn-once fallback convention."""
    raw = os.environ.get(env, "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        telemetry.warn_once(
            warn_key,
            f"{env}={raw!r} is not a number; "
            f"falling back to the default ({default})",
        )
        return default
    if value < minimum or (maximum is not None and value > maximum):
        telemetry.warn_once(
            warn_key,
            f"{env}={raw!r} is out of range "
            f"[{minimum:g}, {maximum if maximum is not None else 'inf'}]; "
            f"falling back to the default ({default})",
        )
        return default
    return value


def tenant_quota_fraction() -> float:
    """Configured per-tenant queue-share cap (``REPRO_TENANT_QUOTA``)."""
    return _float_env(QUOTA_ENV, DEFAULT_QUOTA_FRACTION,
                      "invalid_tenant_quota", 0.0, 1.0)


def tenant_burn_shed_threshold() -> float:
    """Configured burn-shed threshold (``REPRO_TENANT_BURN_SHED``)."""
    return _float_env(BURN_SHED_ENV, DEFAULT_BURN_SHED,
                      "invalid_tenant_burn_shed", 0.0)


@dataclass(frozen=True)
class TenantPolicy:
    """The resolved per-tenant QoS policy one queue schedules by."""

    #: Explicit tenant weights; tenants not listed get ``default_weight``.
    weights: Mapping[str, float] = field(default_factory=dict)
    default_weight: float = DEFAULT_WEIGHT
    #: Max fraction of queue capacity one tenant may occupy (1.0 = off).
    quota_fraction: float = DEFAULT_QUOTA_FRACTION
    #: Interactive fast-window burn rate above which batch sheds first.
    burn_shed_threshold: float = DEFAULT_BURN_SHED

    def weight(self, tenant: str) -> float:
        """The (floored) DRR weight of ``tenant``."""
        return max(self.weights.get(tenant, self.default_weight),
                   MIN_WEIGHT)

    def quota(self, capacity: int) -> int:
        """The per-tenant entry cap for a queue of ``capacity`` slots.

        Always at least 1 (a tenant can never be locked out entirely)
        and exactly ``capacity`` at the default fraction, which makes
        the quota check coincide with the global capacity check in the
        single-tenant case.
        """
        fraction = min(max(self.quota_fraction, 0.0), 1.0)
        return max(1, int(capacity * fraction)) if fraction < 1.0 \
            else capacity


def policy_from_env() -> TenantPolicy:
    """The :class:`TenantPolicy` the ``REPRO_TENANT_*`` knobs describe."""
    return TenantPolicy(
        weights=parse_tenant_weights(os.environ.get(WEIGHTS_ENV)),
        quota_fraction=tenant_quota_fraction(),
        burn_shed_threshold=tenant_burn_shed_threshold(),
    )
