"""Shared fixtures.

Most scheduler/simulator tests run on a *small* configuration (4 channels
× 4 PEs, dependency distance 4) so that hand-checkable schedules stay
small; paper-shape tests use the published configurations.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

# The suite's golden/determinism tests compare reports byte for byte, so
# every test runs at the exact fidelity tier unless it opts in to the
# estimator explicitly (fidelity tests pass the tier as an argument,
# which always wins over the environment).
os.environ.setdefault("REPRO_FIDELITY", "exact")

from repro.config import ChasonConfig, HBMConfig, SerpensConfig
from repro.matrices import generators


@pytest.fixture
def small_hbm() -> HBMConfig:
    return HBMConfig(total_channels=8)


@pytest.fixture
def small_serpens(small_hbm) -> SerpensConfig:
    return SerpensConfig(
        sparse_channels=4,
        pes_per_channel=4,
        accumulator_latency=4,
        column_window=64,
        row_window=256,
        hbm=small_hbm,
    )


@pytest.fixture
def small_chason(small_hbm) -> ChasonConfig:
    return ChasonConfig(
        sparse_channels=4,
        pes_per_channel=4,
        accumulator_latency=4,
        column_window=64,
        row_window=256,
        scug_size=4,
        hbm=small_hbm,
    )


@pytest.fixture
def paper_serpens() -> SerpensConfig:
    return SerpensConfig()


@pytest.fixture
def paper_chason() -> ChasonConfig:
    return ChasonConfig()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_matrix():
    """16x16, a handful of entries, fits one tile of the small config."""
    return generators.uniform_random(16, 16, 24, seed=7)


@pytest.fixture
def small_matrix():
    """200x180 uniform matrix spanning several column windows (W=64)."""
    return generators.uniform_random(200, 180, 900, seed=11)


@pytest.fixture
def skewed_matrix():
    """Power-law rows: the imbalanced case CrHCS targets."""
    return generators.power_law_rows(300, 300, 1500, alpha=1.6, seed=13)
