"""Chasoň / Serpens accelerator façades and the SpMM extension."""

import numpy as np
import pytest

from repro.baselines.serpens import SerpensAccelerator
from repro.config import ChasonConfig, SerpensConfig
from repro.core.chason import ChasonAccelerator
from repro.core.spmm import chason_spmm, chason_spmm_report, spmm_config
from repro.errors import ConfigError, ShapeError
from repro.matrices import generators


@pytest.fixture
def chason(small_chason):
    return ChasonAccelerator(small_chason)


@pytest.fixture
def serpens(small_serpens):
    return SerpensAccelerator(small_serpens)


class TestChasonAccelerator:
    def test_analyze_report_fields(self, chason, skewed_matrix):
        report = chason.analyze(skewed_matrix)
        assert report.accelerator == "chason"
        assert report.scheme == "crhcs"
        assert report.nnz == skewed_matrix.nnz
        assert report.latency_ms > 0
        assert report.throughput_gflops > 0
        assert 0 <= report.underutilization_pct < 100
        assert report.migrated > 0
        assert report.power_watts == pytest.approx(39.0)

    def test_run_verifies(self, chason, skewed_matrix, rng):
        x = rng.normal(size=skewed_matrix.n_cols).astype(np.float32)
        execution, report = chason.run(skewed_matrix, x)
        assert execution.verify(skewed_matrix.matvec(x))
        assert report.total_cycles == execution.cycles.total

    def test_run_shape_check(self, chason, skewed_matrix):
        with pytest.raises(ShapeError):
            chason.run(skewed_matrix, np.zeros(5, dtype=np.float32))

    def test_migration_report_exposed(self, chason, skewed_matrix):
        chason.analyze(skewed_matrix)
        assert chason.last_migration is not None
        assert chason.last_migration.migrated > 0

    def test_requires_chason_config(self, small_serpens):
        with pytest.raises(ConfigError):
            ChasonAccelerator(small_serpens)

    def test_energy_efficiency_from_power(self, chason, skewed_matrix):
        report = chason.analyze(skewed_matrix)
        assert report.energy_efficiency == pytest.approx(
            report.throughput_gflops / 39.0
        )

    def test_bandwidth_efficiency(self, chason, skewed_matrix):
        report = chason.analyze(skewed_matrix)
        assert report.bandwidth_efficiency == pytest.approx(
            report.throughput_gflops / report.bandwidth_gbps
        )

    def test_as_table_row(self, chason, skewed_matrix):
        row = chason.analyze(skewed_matrix).as_table_row()
        assert "chason" in row and "GFLOPS" in row


class TestSerpensAccelerator:
    def test_analyze(self, serpens, skewed_matrix):
        report = serpens.analyze(skewed_matrix)
        assert report.accelerator == "serpens"
        assert report.scheme == "pe_aware"
        assert report.migrated == 0
        assert report.power_watts == pytest.approx(36.0)

    def test_run_verifies(self, serpens, skewed_matrix, rng):
        x = rng.normal(size=skewed_matrix.n_cols).astype(np.float32)
        execution, _ = serpens.run(skewed_matrix, x)
        assert execution.verify(skewed_matrix.matvec(x))

    def test_requires_serpens_config(self, small_chason):
        with pytest.raises(ConfigError):
            SerpensAccelerator(small_chason)

    def test_chason_beats_serpens_on_skew(self, chason, serpens,
                                          skewed_matrix):
        chason_report = chason.analyze(skewed_matrix)
        serpens_report = serpens.analyze(skewed_matrix)
        assert chason_report.latency_ms < serpens_report.latency_ms
        assert (
            chason_report.underutilization_pct
            < serpens_report.underutilization_pct
        )


class TestSpMM:
    def test_spmm_config_channels(self):
        config = spmm_config()
        assert config.sparse_channels == 16
        # §7.2: 29 channels in total.
        assert config.used_channels == 29

    def test_functional_result(self, rng):
        matrix = generators.uniform_random(60, 40, 300, seed=23)
        b = rng.normal(size=(40, 5)).astype(np.float32)
        result, report = chason_spmm(matrix, b)
        expected = matrix.to_dense() @ b.astype(np.float64)
        np.testing.assert_allclose(result, expected, rtol=1e-4, atol=1e-5)
        assert report.nnz == matrix.nnz
        assert report.b_cols == 5

    def test_alpha_beta(self, rng):
        matrix = generators.uniform_random(20, 20, 80, seed=24)
        b = rng.normal(size=(20, 3)).astype(np.float32)
        c = rng.normal(size=(20, 3))
        result, _ = chason_spmm(matrix, b, c=c, alpha=2.0, beta=0.5)
        expected = 2.0 * matrix.to_dense() @ b.astype(np.float64) + 0.5 * c
        np.testing.assert_allclose(result, expected, rtol=1e-4, atol=1e-5)

    def test_shape_checks(self, rng):
        matrix = generators.uniform_random(20, 20, 80, seed=25)
        with pytest.raises(ShapeError):
            chason_spmm(matrix, rng.normal(size=(19, 3)))
        with pytest.raises(ShapeError):
            chason_spmm(matrix, rng.normal(size=(20, 3)),
                        c=np.zeros((20, 4)))

    def test_report_scales_with_b_cols(self):
        matrix = generators.uniform_random(100, 100, 600, seed=26)
        narrow = chason_spmm_report(matrix, b_cols=8)
        wide = chason_spmm_report(matrix, b_cols=64)
        assert wide.latency_ms > narrow.latency_ms
        # Wider panels amortise overheads: throughput improves or holds.
        assert wide.throughput_gflops >= narrow.throughput_gflops * 0.9
