"""Analysis statistics, experiment runners, and report formatting."""

import numpy as np
import pytest

from repro.analysis.experiments import (
    compare_on_corpus,
    compare_on_named,
    corpus_matrices,
    default_corpus_size,
    gpu_cpu_comparison,
)
from repro.analysis.report import format_table, format_table1, format_table3
from repro.analysis.stats import describe, gaussian_kde_pdf, histogram_pdf
from repro.errors import ConfigError
from repro.resources.model import chason_resources, serpens_resources


class TestDensityEstimates:
    def test_histogram_mode(self):
        values = [10.0] * 50 + [90.0] * 5
        pdf = histogram_pdf(values)
        assert pdf.mode == pytest.approx(10.0, abs=5.0)

    def test_histogram_normalised(self):
        pdf = histogram_pdf(np.random.default_rng(0).uniform(0, 100, 500))
        step = pdf.centers[1] - pdf.centers[0]
        assert np.sum(pdf.density) * step == pytest.approx(1.0, abs=0.01)

    def test_kde_smooth_and_normalised(self):
        values = np.random.default_rng(1).normal(50, 10, 300)
        pdf = gaussian_kde_pdf(values)
        step = pdf.centers[1] - pdf.centers[0]
        assert np.sum(pdf.density) * step == pytest.approx(1.0, abs=0.05)
        assert pdf.mode == pytest.approx(50.0, abs=5.0)

    def test_mass_below(self):
        values = [10.0] * 50 + [90.0] * 50
        pdf = histogram_pdf(values)
        assert pdf.mass_below(50.0) == pytest.approx(0.5, abs=0.05)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            histogram_pdf([])
        with pytest.raises(ConfigError):
            gaussian_kde_pdf([])

    def test_describe(self):
        summary = describe([1.0, 2.0, 3.0])
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["count"] == 3.0


class TestExperimentRunners:
    def test_default_corpus_size_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL_CORPUS", raising=False)
        monkeypatch.setenv("REPRO_CORPUS_COUNT", "12")
        monkeypatch.setenv("REPRO_CORPUS_NNZ_CAP", "5000")
        assert default_corpus_size() == (12, 5000)
        monkeypatch.setenv("REPRO_FULL_CORPUS", "1")
        assert default_corpus_size() == (800, None)

    def test_corpus_matrices_yields_pairs(self):
        pairs = list(corpus_matrices(count=3, nnz_cap=2000))
        assert len(pairs) == 3
        for spec, matrix in pairs:
            assert matrix.shape == (spec.n_rows, spec.n_cols)

    def test_compare_on_named_subset(self):
        results = compare_on_named(names=["CollegeMsg", "as-735"])
        assert [r.matrix_id for r in results] == ["CM", "A7"]
        for result in results:
            assert result.speedup > 1.0
            assert result.transfer_reduction > 1.0
            assert result.energy_efficiency_improvement > 0

    def test_compare_on_corpus_small(self):
        result = compare_on_corpus(count=4, nnz_cap=3000)
        assert result.count == 4
        assert len(result.speedups) == 4
        assert result.geomean_speedup > 1.0
        assert all(
            c <= s
            for c, s in zip(
                result.chason_underutilization,
                result.serpens_underutilization,
            )
        )

    def test_gpu_cpu_comparison_rows(self):
        rows = gpu_cpu_comparison(count=3, nnz_cap=3000)
        assert len(rows) == 9  # 3 matrices x 3 baselines
        baselines = {row.baseline for row in rows}
        assert baselines == {"rtx4090", "rtxa6000", "i9"}
        for row in rows:
            assert row.speedup > 0
            assert row.energy_gain > 0


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [["1", "2"], ["33", "4"]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert len(lines) == 5

    def test_format_table1(self):
        text = format_table1([serpens_resources(), chason_resources()])
        assert "URAM" in text
        assert "512" in text and "384" in text

    def test_format_table3(self):
        comparisons = compare_on_named(names=["CollegeMsg"])
        text = format_table3(comparisons)
        assert "CM" in text
        assert "Latency" in text
