"""GPU / CPU baseline models and the reference SpMV."""

import numpy as np
import pytest

from repro.baselines.cpu import CORE_I9_11980HK, MklCpuModel
from repro.baselines.gpu import (
    CusparseGpuModel,
    GpuSpec,
    RTX_4090,
    RTX_A6000,
)
from repro.baselines.reference import reference_spmv
from repro.errors import ConfigError
from repro.matrices import generators


class TestGpuModel:
    def test_latency_positive_and_bounded_below_by_overhead(self):
        model = CusparseGpuModel(RTX_4090)
        matrix = generators.uniform_random(100, 100, 500, seed=1)
        assert model.latency_seconds(matrix) > RTX_4090.launch_overhead_s

    def test_larger_matrices_take_longer(self):
        model = CusparseGpuModel(RTX_4090)
        small = generators.uniform_random(200, 200, 2000, seed=2)
        large = generators.uniform_random(2000, 2000, 200000, seed=2)
        assert model.latency_seconds(large) > model.latency_seconds(small)

    def test_effective_bandwidth_below_peak(self):
        model = CusparseGpuModel(RTX_4090)
        matrix = generators.uniform_random(500, 500, 5000, seed=3)
        assert (
            model.effective_bandwidth_gbps(matrix)
            < RTX_4090.peak_bandwidth_gbps
        )

    def test_imbalance_hurts_gpu(self):
        model = CusparseGpuModel(RTX_4090)
        uniform = generators.uniform_random(1000, 1000, 20000, seed=4)
        skewed = generators.power_law_rows(1000, 1000, 20000, alpha=1.8,
                                           seed=4)
        assert (
            model.effective_bandwidth_gbps(skewed)
            < model.effective_bandwidth_gbps(uniform)
        )

    def test_a6000_beats_4090_on_small(self):
        # §6.2.1 shape: the server card handles small kernels much better.
        matrix = generators.uniform_random(300, 300, 3000, seed=5)
        lat_4090 = CusparseGpuModel(RTX_4090).latency_seconds(matrix)
        lat_a6000 = CusparseGpuModel(RTX_A6000).latency_seconds(matrix)
        assert lat_a6000 < lat_4090

    def test_throughput_formula(self):
        model = CusparseGpuModel(RTX_A6000)
        matrix = generators.uniform_random(400, 400, 4000, seed=6)
        expected = 2 * (matrix.nnz + matrix.n_cols) / (
            model.latency_seconds(matrix) * 1e9
        )
        assert model.throughput_gflops(matrix) == pytest.approx(expected)

    def test_spec_validation(self):
        with pytest.raises(ConfigError):
            GpuSpec("bad", -1, 1, 1, 1e-6, 0.5, 1e6, 0.5, 100)
        with pytest.raises(ConfigError):
            GpuSpec("bad", 100, 1, 1, 1e-6, 1.5, 1e6, 0.5, 100)


class TestCpuModel:
    def test_cache_resident_fast_path(self):
        model = MklCpuModel()
        matrix = generators.uniform_random(500, 500, 10000, seed=7)
        assert (
            model.effective_bandwidth_gbps(matrix)
            > 0.5 * CORE_I9_11980HK.cache_bandwidth_gbps
        )

    def test_out_of_cache_penalty(self):
        model = MklCpuModel()
        # ~36 MB of traffic: beyond the 24 MB cache.
        big = generators.uniform_random(4000, 4000, 3_000_000, seed=8)
        small = generators.uniform_random(500, 500, 10000, seed=8)
        assert (
            model.effective_bandwidth_gbps(big)
            < model.effective_bandwidth_gbps(small)
        )

    def test_cpu_tolerates_imbalance_better_than_gpu(self):
        cpu = MklCpuModel()
        gpu = CusparseGpuModel(RTX_4090)
        uniform = generators.uniform_random(1000, 1000, 20000, seed=9)
        skewed = generators.power_law_rows(1000, 1000, 20000, alpha=1.8,
                                           seed=9)
        cpu_ratio = cpu.latency_seconds(skewed) / cpu.latency_seconds(uniform)
        gpu_ratio = gpu.latency_seconds(skewed) / gpu.latency_seconds(uniform)
        assert cpu_ratio < gpu_ratio

    def test_peak_throughput_band(self):
        # §6.2.1: the i9 peaks at ≈24 GFLOPS on cache-resident matrices.
        model = MklCpuModel()
        matrix = generators.uniform_random(1400, 1400, 1_000_000, seed=10)
        assert 10.0 < model.throughput_gflops(matrix) < 40.0


class TestReference:
    def test_reference_matches_dense(self, rng):
        matrix = generators.uniform_random(50, 60, 400, seed=11)
        x = rng.normal(size=60)
        np.testing.assert_allclose(
            reference_spmv(matrix, x), matrix.to_dense() @ x
        )

    def test_reference_accepts_csr(self, rng):
        from repro.formats.convert import to_csr

        matrix = generators.uniform_random(50, 60, 400, seed=12)
        x = rng.normal(size=60)
        np.testing.assert_allclose(
            reference_spmv(to_csr(matrix), x), reference_spmv(matrix, x)
        )
