"""Unit tests for the schedule cache and the parallel corpus runner."""

import os

import pytest

from repro.config import DEFAULT_CHASON, DEFAULT_SERPENS
from repro.analysis.runner import (
    WORKERS_ENV,
    corpus_worker_count,
    run_over_specs,
)
from repro.matrices.collection import corpus_specs
from repro.scheduling.cache import ScheduleCache
from repro.scheduling.crhcs import schedule_crhcs
from repro.scheduling.pe_aware import schedule_pe_aware

SPEC = corpus_specs(count=1, nnz_cap=2_000)[0]
MATRIX = SPEC.generate()


def _build_pe_aware():
    return schedule_pe_aware(MATRIX, DEFAULT_SERPENS)


class TestScheduleCache:
    def test_hit_returns_same_object(self):
        cache = ScheduleCache(capacity=4)
        first = cache.get_or_build(
            SPEC, DEFAULT_SERPENS, "pe_aware", _build_pe_aware
        )
        second = cache.get_or_build(
            SPEC, DEFAULT_SERPENS, "pe_aware", _build_pe_aware
        )
        assert first is second
        assert cache.hits == 1
        assert cache.misses == 1

    def test_scheme_and_config_partition_the_key_space(self):
        cache = ScheduleCache(capacity=4)
        pe_aware = cache.get_or_build(
            SPEC, DEFAULT_SERPENS, "pe_aware", _build_pe_aware
        )
        crhcs = cache.get_or_build(
            SPEC,
            DEFAULT_CHASON,
            "crhcs",
            lambda: schedule_crhcs(MATRIX, DEFAULT_CHASON),
        )
        assert pe_aware is not crhcs
        assert cache.misses == 2

    def test_lru_evicts_oldest(self):
        cache = ScheduleCache(capacity=2)
        for scheme in ("a", "b", "c"):
            cache.get_or_build(SPEC, DEFAULT_SERPENS, scheme, _build_pe_aware)
        assert len(cache) == 2
        # "a" was evicted: rebuilding it is a miss, "c" is still a hit.
        cache.get_or_build(SPEC, DEFAULT_SERPENS, "c", _build_pe_aware)
        assert cache.hits == 1
        cache.get_or_build(SPEC, DEFAULT_SERPENS, "a", _build_pe_aware)
        assert cache.misses == 4

    def test_capacity_zero_disables_memoisation(self):
        cache = ScheduleCache(capacity=0)
        first = cache.get_or_build(
            SPEC, DEFAULT_SERPENS, "pe_aware", _build_pe_aware
        )
        second = cache.get_or_build(
            SPEC, DEFAULT_SERPENS, "pe_aware", _build_pe_aware
        )
        assert first is not second
        assert len(cache) == 0

    def test_disk_tier_round_trips_the_wire_format(self, tmp_path):
        writer = ScheduleCache(capacity=0, disk_dir=str(tmp_path))
        built = writer.get_or_build(
            SPEC, DEFAULT_SERPENS, "pe_aware", _build_pe_aware
        )
        files = [f for f in os.listdir(tmp_path) if f.endswith(".chsn")]
        assert len(files) == 1

        reader = ScheduleCache(capacity=0, disk_dir=str(tmp_path))
        restored = reader.get_or_build(
            SPEC,
            DEFAULT_SERPENS,
            "pe_aware",
            lambda: pytest.fail("disk hit expected, build() called"),
        )
        assert reader.hits == 1
        assert restored.stream_cycles == built.stream_cycles
        assert restored.nnz == built.nnz
        # Wire format stores float32 values; stall structure is exact.
        assert restored.total_stalls == built.total_stalls

    def test_clear_resets_counters(self):
        cache = ScheduleCache(capacity=4)
        cache.get_or_build(SPEC, DEFAULT_SERPENS, "pe_aware", _build_pe_aware)
        cache.clear()
        assert (len(cache), cache.hits, cache.misses) == (0, 0, 0)


def _square(value):
    return value * value


class TestCorpusRunner:
    def test_worker_count_defaults_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert corpus_worker_count() == 1
        monkeypatch.setenv(WORKERS_ENV, "not-a-number")
        assert corpus_worker_count() == 1
        monkeypatch.setenv(WORKERS_ENV, "0")
        assert corpus_worker_count() == 1
        monkeypatch.setenv(WORKERS_ENV, "4")
        assert corpus_worker_count() == 4

    def test_serial_map_preserves_order(self):
        assert run_over_specs(_square, [3, 1, 2], workers=1) == [9, 1, 4]

    def test_parallel_map_matches_serial(self):
        items = list(range(17))
        serial = run_over_specs(_square, items, workers=1)
        parallel = run_over_specs(_square, items, workers=2)
        assert parallel == serial

    def test_single_item_never_forks(self):
        # len(items) <= 1 short-circuits to the serial path even with
        # workers > 1, so non-picklable workers are fine here.
        assert run_over_specs(lambda v: v + 1, [41], workers=8) == [42]
