"""Cluster-layer tests: ring, faults, health, routing, failover, CLI.

The resilience behaviours are made deterministic with seeded fault
plans (the injector's RNG is keyed on ``(plan seed, device id)``) and
with placement probes: where a test needs "the request whose primary is
the faulty device", it *finds* one via :meth:`Cluster.candidates_for`
instead of hoping the hash lands there.

The two ISSUE-mandated properties: cluster responses are byte-identical
to isolated serial runs in every failure mode (``TestByteIdentity``),
and overload or device loss never raises — degradation is always a
structured response (``TestFailover``).
"""

from __future__ import annotations

import dataclasses
import json
import logging

import pytest

from repro import telemetry
from repro.cli import main
from repro.cluster import (
    Cluster,
    DeviceHealth,
    FAILURE_THRESHOLD,
    FAULT_DETAIL_PREFIX,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    HashRing,
    parse_fault_plan,
)
from repro.cluster.cluster import (
    cluster_device_count,
    cluster_hedge_ms,
    cluster_max_attempts,
    cluster_replica_count,
)
from repro.errors import DeviceFaultError, ServingError
from repro.knobs import RUNTIME_KNOBS, knob
from repro.matrices.generators import uniform_random
from repro.pipeline.runner import PipelineRunner
from repro.scheduling.registry import get_scheme
from repro.serving import SpMVRequest
from repro.serving.request import STATUS_ERROR
from repro.serving.slo import latency_percentiles
from repro.telemetry.summarize import (
    summarize_cluster_devices,
    summarize_records,
)

#: Small in-memory matrices keep every cluster test sub-second.
MATRICES = [uniform_random(48, 48, 260, seed=seed) for seed in range(6)]


@pytest.fixture(autouse=True)
def _fresh_warnings():
    telemetry.reset_warnings()
    yield
    telemetry.reset_warnings()


def report_bytes(report) -> bytes:
    return json.dumps(
        dataclasses.asdict(report), sort_keys=True
    ).encode()


def serial_report(request: SpMVRequest):
    """What one isolated, serial pipeline run answers for ``request``."""
    spec = get_scheme(request.scheme)
    config = request.resolve_config(spec)
    return PipelineRunner().analyze(request.source, spec, config).report


def request_with_primary(cluster: Cluster, device_id: str) -> SpMVRequest:
    """A request whose consistent-hash primary is ``device_id``."""
    for matrix in MATRICES:
        request = SpMVRequest(matrix)
        if cluster.candidates_for(request)[0] == device_id:
            return request
    raise AssertionError(
        f"no probe matrix hashes to {device_id}; add more MATRICES"
    )


class TestHashRing:
    def test_placement_is_deterministic_across_instances(self):
        rings = [HashRing(), HashRing()]
        for ring in rings:
            for index in range(4):
                ring.add(f"dev{index}")
        keys = [f"fingerprint-{i}" for i in range(50)]
        assert [rings[0].candidates(k, 2) for k in keys] == [
            rings[1].candidates(k, 2) for k in keys
        ]

    def test_candidates_are_distinct_devices(self):
        ring = HashRing()
        for index in range(3):
            ring.add(f"dev{index}")
        for key in ("a", "b", "c", "d"):
            candidates = ring.candidates(key, 3)
            assert len(candidates) == len(set(candidates)) == 3

    def test_count_caps_at_ring_size_and_empty_ring_degrades(self):
        ring = HashRing()
        assert ring.candidates("anything", 2) == []
        ring.add("dev0")
        assert ring.candidates("anything", 5) == ["dev0"]

    def test_removal_disrupts_only_the_removed_devices_keys(self):
        ring = HashRing()
        for index in range(4):
            ring.add(f"dev{index}")
        keys = [f"key-{i}" for i in range(200)]
        before = {k: ring.candidates(k, 1)[0] for k in keys}
        ring.remove("dev2")
        for key in keys:
            after = ring.candidates(key, 1)[0]
            if before[key] != "dev2":
                assert after == before[key]
            else:
                assert after != "dev2"

    def test_virtual_nodes_balance_the_partition(self):
        ring = HashRing()
        for index in range(4):
            ring.add(f"dev{index}")
        counts = {}
        for i in range(400):
            primary = ring.candidates(f"key-{i}", 1)[0]
            counts[primary] = counts.get(primary, 0) + 1
        assert len(counts) == 4
        assert min(counts.values()) >= 400 // 4 // 3  # no starved shard

    def test_duplicate_add_is_idempotent(self):
        ring = HashRing()
        ring.add("dev0")
        ring.add("dev0")
        assert len(ring) == 1


class TestFaultPlan:
    def test_parse_full_grammar(self):
        plan = parse_fault_plan(
            "slow:1:ms=20:p=0.5,stall:dev2:ms=250,crash:0:after=5,seed=42"
        )
        assert plan.seed == 42
        slow = plan.for_device("dev1")[0]
        assert (slow.kind, slow.ms, slow.p) == ("slow", 20.0, 0.5)
        stall = plan.for_device("dev2")[0]
        assert (stall.kind, stall.ms, stall.p) == ("stall", 250.0, 1.0)
        crash = plan.for_device("dev0")[0]
        assert (crash.kind, crash.after) == ("crash", 5)
        assert "dev1: slow" in plan.describe()

    def test_empty_and_unset_parse_to_no_faults(self):
        assert not parse_fault_plan(None)
        assert not parse_fault_plan("  ")
        assert parse_fault_plan("").describe() == "  (no injected faults)"

    @pytest.mark.parametrize("raw", [
        "explode:1",            # unknown kind
        "slow",                 # missing device
        "slow:1:warp=9",        # unknown parameter
        "slow:1:ms=fast",       # unparseable value
        "seed=banana",          # bad seed
    ])
    def test_malformed_entries_warn_and_skip(self, raw, caplog):
        with caplog.at_level(logging.WARNING):
            plan = parse_fault_plan(raw)
        assert not plan.specs
        assert "REPRO_CLUSTER_FAULTS" in caplog.text

    def test_injector_is_deterministic_per_seed(self):
        specs = [FaultSpec("slow", "dev1", ms=0.01, p=0.5)]
        runs = []
        for _ in range(2):
            injector = FaultInjector("dev1", specs, seed=3)
            for _call in range(40):
                injector.before_execute()
            runs.append(dict(injector.injected))
        assert runs[0] == runs[1]
        assert 0 < runs[0]["slow"] < 40  # p=0.5 actually probabilistic

    def test_crash_after_threshold_raises_with_marker(self):
        injector = FaultInjector(
            "dev0", [FaultSpec("crash", "dev0", after=2)]
        )
        injector.before_execute()
        injector.before_execute()
        with pytest.raises(DeviceFaultError) as excinfo:
            injector.before_execute()
        assert str(excinfo.value).startswith(FAULT_DETAIL_PREFIX)
        assert injector.crashed
        # Once crashed, every later execution dies immediately.
        with pytest.raises(DeviceFaultError):
            injector.before_execute()


class TestDeviceHealth:
    def test_ewma_tracks_latency(self):
        health = DeviceHealth()
        health.record_success(0.010)
        assert health.ewma_latency_ms == pytest.approx(10.0)
        health.record_success(0.020)
        assert health.ewma_latency_ms == pytest.approx(12.0)  # α = 0.2

    def test_success_resets_the_consecutive_streak(self):
        health = DeviceHealth()
        for _ in range(FAILURE_THRESHOLD - 1):
            health.record_failure()
        assert health.healthy
        health.record_failure()
        assert not health.healthy
        health.record_success(0.001)
        assert health.healthy
        assert health.failures == FAILURE_THRESHOLD  # total is kept

    def test_dead_is_not_healthy(self):
        health = DeviceHealth()
        health.mark_dead()
        assert not health.alive and not health.healthy


class TestRouting:
    def test_affinity_pins_a_fingerprint_to_its_primary(self):
        with Cluster(devices=4, fault_plan=FaultPlan()) as cluster:
            request = SpMVRequest(MATRICES[0])
            primary = cluster.candidates_for(request)[0]
            devices = {
                cluster.execute(SpMVRequest(MATRICES[0])).device
                for _ in range(4)
            }
        assert devices == {primary}

    def test_replica_set_size_follows_the_knob(self):
        cluster = Cluster(devices=4, replicas=3, fault_plan=FaultPlan())
        candidates = cluster.candidates_for(SpMVRequest(MATRICES[0]))
        assert len(candidates) == len(set(candidates)) == 3

    def test_round_robin_spreads_identical_work(self):
        with Cluster(devices=4, routing="round_robin",
                     fault_plan=FaultPlan()) as cluster:
            devices = {
                cluster.execute(SpMVRequest(MATRICES[0])).device
                for _ in range(8)
            }
        assert len(devices) > 1

    def test_unknown_routing_policy_raises(self):
        with pytest.raises(ServingError, match="unknown routing"):
            Cluster(devices=1, routing="teleport")

    def test_execute_before_start_raises(self):
        cluster = Cluster(devices=1, fault_plan=FaultPlan())
        with pytest.raises(ServingError, match="not started"):
            cluster.execute(SpMVRequest(MATRICES[0]))

    def test_double_start_raises(self):
        cluster = Cluster(devices=1, fault_plan=FaultPlan())
        cluster.start()
        try:
            with pytest.raises(ServingError, match="already running"):
                cluster.start()
        finally:
            cluster.shutdown()


class TestByteIdentity:
    def test_cluster_matches_serial_on_duplicate_heavy_workload(self):
        """ISSUE property: routing, replication, and coalescing change
        *where* work runs, never *what* comes back."""
        requests = [
            SpMVRequest(MATRICES[index % 4], scheme=scheme)
            for index, scheme in enumerate(
                ["crhcs", "pe_aware", "crhcs", "crhcs",
                 "pe_aware", "crhcs", "crhcs", "pe_aware",
                 "crhcs", "crhcs"]
            )
        ]
        expected = [report_bytes(serial_report(r)) for r in requests]
        with Cluster(devices=4, fault_plan=FaultPlan()) as cluster:
            results = cluster.run(requests, clients=4, timeout=60.0)
        assert all(r.ok for r in results)
        assert [report_bytes(r.response.report) for r in results] \
            == expected

    def test_malformed_work_is_a_structured_nonretryable_error(self):
        with Cluster(devices=2, fault_plan=FaultPlan()) as cluster:
            result = cluster.execute(SpMVRequest("no-such-matrix"))
        assert result.response.status == STATUS_ERROR
        assert "unknown matrix" in result.response.detail
        # A malformed request fails before any placement: no device
        # ever attempts it and nothing retries or fails over.
        assert result.attempts == 0 and not result.failover
        assert result.device == ""


class TestFailover:
    def test_crash_mid_run_fails_over_byte_identically(self):
        """ISSUE property: device loss mid-run answers every request,
        byte-identical, zero unhandled exceptions."""
        plan = parse_fault_plan("crash:1:after=1,seed=7")
        with Cluster(devices=4, fault_plan=plan,
                     hedge_ms=5_000) as cluster:
            # Guarantee the doomed device actually owns traffic: lead
            # with requests whose consistent-hash primary is dev1.
            doomed = request_with_primary(cluster, "dev1")
            requests = [SpMVRequest(doomed.source) for _ in range(3)]
            requests += [SpMVRequest(m) for m in MATRICES] * 2
            expected = [report_bytes(serial_report(r))
                        for r in requests]
            results = cluster.run(requests, clients=4, timeout=60.0)
            status = cluster.status()
        assert all(r.ok for r in results)
        assert [report_bytes(r.response.report) for r in results] \
            == expected
        dev1 = next(d for d in status["devices"]
                    if d["device"] == "dev1")
        assert dev1["state"] == "dead"
        assert status["stats"]["removed_devices"] == 1
        assert status["stats"]["failovers"] >= 1

    def test_immediate_crash_requests_retry_to_replicas(self):
        plan = parse_fault_plan("crash:0:after=0")
        with Cluster(devices=2, fault_plan=plan,
                     hedge_ms=5_000) as cluster:
            request = request_with_primary(cluster, "dev0")
            result = cluster.execute(request)
        assert result.ok
        assert result.device == "dev1"
        assert result.failover and result.attempts >= 2

    def test_stalled_primary_is_hedged_to_a_replica(self):
        with Cluster(devices=2, fault_plan=FaultPlan(),
                     hedge_ms=40) as cluster:
            request = request_with_primary(cluster, "dev0")
            # Stall dev0 from now on; the hedge timer must rescue the
            # request via dev1 long before the stall clears.
            cluster.devices["dev0"].engine.runner = _Staller(0.75)
            result = cluster.execute(request, timeout=30.0)
        assert result.ok
        assert result.hedged
        assert result.device == "dev1"

    def test_remove_device_drains_and_redistributes(self):
        with Cluster(devices=2, fault_plan=FaultPlan()) as cluster:
            request = request_with_primary(cluster, "dev0")
            assert cluster.execute(request).device == "dev0"
            cluster.remove_device("dev0")
            cluster.remove_device("dev0")  # idempotent
            assert cluster.ring.devices == ["dev1"]
            rerouted = cluster.execute(SpMVRequest(request.source))
            assert rerouted.ok and rerouted.device == "dev1"
            assert cluster.status()["stats"]["removed_devices"] == 1

    def test_losing_every_device_degrades_to_a_structured_error(self):
        with Cluster(devices=2, fault_plan=FaultPlan()) as cluster:
            cluster.remove_device("dev0")
            cluster.remove_device("dev1")
            result = cluster.execute(SpMVRequest(MATRICES[0]))
        assert result.response.status == STATUS_ERROR
        assert "no device answered" in result.response.detail

    def test_overload_never_raises(self):
        with Cluster(devices=2, queue_capacity=1, device_workers=1,
                     fault_plan=FaultPlan(), max_attempts=2,
                     hedge_ms=5_000) as cluster:
            results = cluster.run(
                [SpMVRequest(MATRICES[i % len(MATRICES)])
                 for i in range(16)],
                clients=8, timeout=60.0,
            )
        assert len(results) == 16
        for result in results:
            assert result.response.status in ("ok", "rejected")


class _Staller:
    """Stands in for a device's runner: every execution sleeps."""

    def __init__(self, delay_s: float):
        self.delay_s = delay_s
        self._runner = PipelineRunner()

    def analyze(self, source, spec, config, **kwargs):
        import time

        time.sleep(self.delay_s)
        return self._runner.analyze(source, spec, config, **kwargs)


class TestKnobs:
    def test_invalid_cluster_knobs_fall_back_with_warning(
        self, monkeypatch, caplog
    ):
        monkeypatch.setenv("REPRO_CLUSTER_DEVICES", "lots")
        monkeypatch.setenv("REPRO_CLUSTER_REPLICAS", "2.5")
        monkeypatch.setenv("REPRO_CLUSTER_HEDGE_MS", "soon")
        monkeypatch.setenv("REPRO_CLUSTER_RETRIES", "")
        with caplog.at_level(logging.WARNING):
            assert cluster_device_count() == 4
            assert cluster_replica_count() == 2
            assert cluster_hedge_ms() == 100
            assert cluster_max_attempts() == 3
        assert "REPRO_CLUSTER_DEVICES" in caplog.text
        assert "REPRO_CLUSTER_HEDGE_MS" in caplog.text

    def test_cluster_knobs_clamp_to_minimum(self, monkeypatch):
        monkeypatch.setenv("REPRO_CLUSTER_DEVICES", "-3")
        assert cluster_device_count() == 1

    def test_env_knobs_shape_the_cluster(self, monkeypatch):
        monkeypatch.setenv("REPRO_CLUSTER_DEVICES", "3")
        monkeypatch.setenv("REPRO_CLUSTER_REPLICAS", "1")
        monkeypatch.delenv("REPRO_CLUSTER_FAULTS", raising=False)
        cluster = Cluster()
        assert sorted(cluster.devices) == ["dev0", "dev1", "dev2"]
        assert cluster.replicas == 1

    def test_registry_covers_the_cluster_knobs(self):
        names = {entry.name for entry in RUNTIME_KNOBS}
        assert {"REPRO_CLUSTER_DEVICES", "REPRO_CLUSTER_REPLICAS",
                "REPRO_CLUSTER_HEDGE_MS", "REPRO_CLUSTER_RETRIES",
                "REPRO_CLUSTER_FAULTS"} <= names
        assert knob("REPRO_CLUSTER_DEVICES").default == "4"


class TestTelemetryIntegration:
    def test_cluster_spans_counters_and_device_gauges(self):
        plan = parse_fault_plan("crash:1:after=0")
        with telemetry.capture() as cap:
            with Cluster(devices=2, fault_plan=plan,
                         hedge_ms=5_000) as cluster:
                request = request_with_primary(cluster, "dev1")
                assert cluster.execute(request).ok
        spans = {r["name"] for r in cap.records if r["kind"] == "span"}
        assert "cluster.route" in spans
        assert "cluster.retry" in spans
        assert "cluster.failover" in spans
        counters = {r["name"] for r in cap.records
                    if r["kind"] == "counter"}
        assert {"cluster.routed", "cluster.retry",
                "cluster.failover", "cluster.completed"} <= counters
        gauges = {r["name"] for r in cap.records if r["kind"] == "gauge"}
        assert "cluster.device.completed" in gauges

    def test_summarize_renders_a_per_device_section(self):
        with telemetry.capture() as cap:
            with Cluster(devices=2, fault_plan=FaultPlan()) as cluster:
                assert cluster.execute(SpMVRequest(MATRICES[0])).ok
        report = summarize_records(cap.records)
        assert "cluster devices" in report
        table = summarize_cluster_devices(cap.records)
        assert "dev0" in table and "dev1" in table

    def test_non_cluster_traces_omit_the_device_section(self):
        with telemetry.capture() as cap:
            cap.counter("serving.accepted", 1)
        assert summarize_cluster_devices(cap.records) == ""
        assert "cluster devices" not in summarize_records(cap.records)

    def test_span_free_traces_omit_latency_percentiles(self):
        with telemetry.capture() as cap:
            cap.counter("serving.accepted", 1)
        report = summarize_records(cap.records)
        assert "latency percentiles" not in report
        assert "counters" in report

    def test_empty_latency_summary_is_well_formed(self):
        summary = latency_percentiles([])
        assert summary == {
            "count": 0, "mean_ms": 0.0, "max_ms": 0.0,
            "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0,
        }


class TestCLI:
    def test_cluster_status_prints_the_device_table(self, capsys):
        assert main(["cluster", "status", "--devices", "3"]) == 0
        out = capsys.readouterr().out
        assert "dev0" in out and "dev2" in out
        assert "fault plan" in out

    def test_cluster_serve_writes_jsonl_with_routing_fields(
        self, tmp_path, capsys
    ):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            '{"matrix": "CollegeMsg"}\n{"matrix": "CollegeMsg"}\n'
        )
        out_path = tmp_path / "responses.jsonl"
        assert main(["cluster", "serve", str(requests),
                     "--devices", "2", "--clients", "2",
                     "--hedge-ms", "5000",
                     "--out", str(out_path)]) == 0
        lines = out_path.read_text().strip().splitlines()
        assert len(lines) == 2
        payloads = [json.loads(line) for line in lines]
        assert all(p["status"] == "ok" for p in payloads)
        assert all(p["device"].startswith("dev") for p in payloads)
        assert {p["device"] for p in payloads} == {payloads[0]["device"]}
        summary = capsys.readouterr().out
        assert "affinity hit rate" in summary

    def test_info_lists_cluster_knobs(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "REPRO_CLUSTER_DEVICES" in out
        assert "REPRO_CLUSTER_FAULTS" in out
