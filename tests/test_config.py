"""Configuration validation and derived quantities."""

import pytest

from repro.config import (
    ACCUMULATOR_LATENCY,
    COLUMN_WINDOW,
    ELEMENTS_PER_WORD,
    AcceleratorConfig,
    ChasonConfig,
    HBMConfig,
    SerpensConfig,
    paper_configs,
)
from repro.errors import ConfigError


class TestHBMConfig:
    def test_defaults_match_u55c(self):
        hbm = HBMConfig()
        assert hbm.total_channels == 32
        assert hbm.channel_bytes == 64
        assert hbm.peak_bandwidth_gbps == pytest.approx(459.84)

    def test_used_bandwidth_for_chason(self):
        hbm = HBMConfig()
        # §5.1: Chasoň uses 19 channels for ≈273 GB/s.
        assert hbm.used_bandwidth_gbps(19) == pytest.approx(273.03)

    def test_rejects_zero_channels(self):
        with pytest.raises(ConfigError):
            HBMConfig(total_channels=0)

    def test_rejects_negative_bandwidth(self):
        with pytest.raises(ConfigError):
            HBMConfig(bandwidth_per_channel_gbps=-1.0)

    def test_rejects_unaligned_width(self):
        with pytest.raises(ConfigError):
            HBMConfig(channel_bits=100)

    def test_used_bandwidth_rejects_overallocation(self):
        with pytest.raises(ConfigError):
            HBMConfig(total_channels=4).used_bandwidth_gbps(5)


class TestAcceleratorConfig:
    def test_total_pes(self):
        config = AcceleratorConfig()
        assert config.total_pes == 16 * ELEMENTS_PER_WORD == 128

    def test_used_channels_is_nineteen(self):
        # 16 sparse + x + y + instruction stream (§5.1).
        assert AcceleratorConfig().used_channels == 19

    def test_cycle_time(self):
        config = AcceleratorConfig(frequency_mhz=250.0)
        assert config.cycle_time_ns == pytest.approx(4.0)

    def test_with_frequency_returns_copy(self):
        config = AcceleratorConfig()
        faster = config.with_frequency(400.0)
        assert faster.frequency_mhz == 400.0
        assert config.frequency_mhz == 223.0

    def test_rejects_too_many_pes_per_word(self):
        with pytest.raises(ConfigError):
            AcceleratorConfig(pes_per_channel=9)

    def test_rejects_channel_overallocation(self):
        with pytest.raises(ConfigError):
            AcceleratorConfig(
                sparse_channels=31, hbm=HBMConfig(total_channels=32)
            )

    def test_rejects_zero_latency(self):
        with pytest.raises(ConfigError):
            AcceleratorConfig(accumulator_latency=0)


class TestPublishedConfigs:
    def test_frequencies(self):
        chason, serpens = paper_configs()
        assert chason.frequency_mhz == 301.0
        assert serpens.frequency_mhz == 223.0

    def test_window_sizes(self):
        chason, _ = paper_configs()
        assert chason.column_window == COLUMN_WINDOW == 8192
        assert chason.row_window == 2**15

    def test_accumulator_latency_is_ten(self):
        assert ACCUMULATOR_LATENCY == 10
        chason, serpens = paper_configs()
        assert chason.accumulator_latency == 10
        assert serpens.accumulator_latency == 10

    def test_chason_migration_defaults(self):
        chason, _ = paper_configs()
        assert chason.migration_span == 1
        assert chason.scug_size == 4

    def test_chason_scug_bounds(self):
        with pytest.raises(ConfigError):
            ChasonConfig(scug_size=0)
        with pytest.raises(ConfigError):
            ChasonConfig(scug_size=9)

    def test_chason_span_bounds(self):
        with pytest.raises(ConfigError):
            ChasonConfig(migration_span=16)
        ChasonConfig(migration_span=0)  # disabled migration is legal

    def test_serpens_is_accelerator_config(self):
        assert isinstance(SerpensConfig(), AcceleratorConfig)
