"""Format conversions and MatrixMarket IO."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats.convert import coo_to_csr, csr_to_coo, to_coo, to_csr
from repro.formats.coo import COOMatrix
from repro.formats.io import load_matrix_market, save_matrix_market
from repro.matrices import generators


class TestConvert:
    def test_coo_csr_roundtrip(self):
        coo = generators.uniform_random(30, 40, 120, seed=5)
        back = csr_to_coo(coo_to_csr(coo))
        np.testing.assert_allclose(back.to_dense(), coo.to_dense())

    def test_conversion_sums_duplicates(self):
        coo = COOMatrix.from_entries(
            (2, 2), [(0, 1, 1.0), (0, 1, 2.5)]
        )
        csr = coo_to_csr(coo)
        assert csr.nnz == 1
        assert csr.to_dense()[0, 1] == pytest.approx(3.5)

    def test_csr_columns_sorted(self):
        coo = COOMatrix.from_entries(
            (1, 5), [(0, 4, 1.0), (0, 1, 2.0), (0, 3, 3.0)]
        )
        csr = coo_to_csr(coo)
        assert csr.indices.tolist() == [1, 3, 4]

    def test_to_csr_idempotent(self):
        csr = coo_to_csr(generators.diagonal(5, seed=1))
        assert to_csr(csr) is csr

    def test_to_coo_idempotent(self):
        coo = generators.diagonal(5, seed=1)
        assert to_coo(coo) is coo

    def test_to_csr_rejects_other_types(self):
        with pytest.raises(FormatError):
            to_csr(np.zeros((2, 2)))


class TestMatrixMarket:
    def test_roundtrip(self, tmp_path):
        matrix = generators.uniform_random(10, 12, 30, seed=3)
        path = tmp_path / "m.mtx"
        save_matrix_market(matrix, path)
        loaded = load_matrix_market(path)
        np.testing.assert_allclose(
            loaded.to_dense(), matrix.to_dense(), rtol=1e-6
        )

    def test_gzip_roundtrip(self, tmp_path):
        matrix = generators.diagonal(6, seed=2)
        path = tmp_path / "m.mtx.gz"
        save_matrix_market(matrix, path)
        loaded = load_matrix_market(path)
        np.testing.assert_allclose(
            loaded.to_dense(), matrix.to_dense(), rtol=1e-6
        )

    def test_pattern_field(self, tmp_path):
        path = tmp_path / "p.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 2\n1 1\n2 2\n"
        )
        loaded = load_matrix_market(path)
        assert loaded.nnz == 2
        assert set(loaded.values.tolist()) == {1.0}

    def test_symmetric_expansion(self, tmp_path):
        path = tmp_path / "s.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 2\n2 1 5.0\n3 3 1.0\n"
        )
        loaded = load_matrix_market(path)
        dense = loaded.to_dense()
        assert dense[1, 0] == pytest.approx(5.0)
        assert dense[0, 1] == pytest.approx(5.0)
        assert dense[2, 2] == pytest.approx(1.0)
        assert loaded.nnz == 3  # off-diagonal mirrored once

    def test_rejects_non_matrixmarket(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("hello world\n")
        with pytest.raises(FormatError):
            load_matrix_market(path)

    def test_rejects_array_format(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n2 2\n")
        with pytest.raises(FormatError):
            load_matrix_market(path)

    def test_rejects_truncated_entries(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"
        )
        with pytest.raises(FormatError):
            load_matrix_market(path)

    def test_comment_lines_skipped(self, tmp_path):
        path = tmp_path / "c.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n% another\n1 1 1\n1 1 9.0\n"
        )
        loaded = load_matrix_market(path)
        assert loaded.to_dense()[0, 0] == pytest.approx(9.0)
