"""COO matrix behaviour."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.formats.coo import COOMatrix


def make(shape=(4, 5), entries=((0, 0, 1.0), (1, 2, -2.0), (3, 4, 0.5))):
    return COOMatrix.from_entries(shape, entries)


class TestConstruction:
    def test_basic_properties(self):
        matrix = make()
        assert matrix.nnz == 3
        assert matrix.n_rows == 4
        assert matrix.n_cols == 5
        assert matrix.density == pytest.approx(3 / 20)

    def test_from_dense(self):
        dense = np.array([[0, 1.5], [2.5, 0]])
        matrix = COOMatrix.from_dense(dense)
        assert matrix.nnz == 2
        np.testing.assert_allclose(matrix.to_dense(), dense)

    def test_from_dense_rejects_1d(self):
        with pytest.raises(ShapeError):
            COOMatrix.from_dense(np.ones(3))

    def test_empty_matrix(self):
        matrix = COOMatrix.from_entries((3, 3), [])
        assert matrix.nnz == 0
        assert matrix.row_lengths().tolist() == [0, 0, 0]

    def test_rejects_bad_shape(self):
        with pytest.raises(ShapeError):
            COOMatrix.from_entries((0, 3), [])

    def test_rejects_out_of_bounds_row(self):
        with pytest.raises(FormatError):
            make(entries=[(4, 0, 1.0)])

    def test_rejects_out_of_bounds_col(self):
        with pytest.raises(FormatError):
            make(entries=[(0, 5, 1.0)])

    def test_rejects_ragged_arrays(self):
        with pytest.raises(FormatError):
            COOMatrix((2, 2), np.array([0]), np.array([0, 1]),
                      np.array([1.0]))

    def test_iteration_yields_triples(self):
        triples = list(make())
        assert triples[0] == (0, 0, 1.0)
        assert len(triples) == 3


class TestTransforms:
    def test_sum_duplicates(self):
        matrix = COOMatrix.from_entries(
            (2, 2), [(0, 0, 1.0), (0, 0, 2.0), (1, 1, 3.0)]
        )
        summed = matrix.sum_duplicates()
        assert summed.nnz == 2
        assert summed.to_dense()[0, 0] == pytest.approx(3.0)

    def test_sum_duplicates_empty(self):
        matrix = COOMatrix.from_entries((2, 2), [])
        assert matrix.sum_duplicates().nnz == 0

    def test_prune(self):
        matrix = COOMatrix.from_entries(
            (2, 2), [(0, 0, 1e-9), (1, 1, 5.0)]
        )
        assert matrix.prune(1e-6).nnz == 1

    def test_transpose(self):
        matrix = make()
        transposed = matrix.transpose()
        assert transposed.shape == (5, 4)
        np.testing.assert_allclose(
            transposed.to_dense(), matrix.to_dense().T
        )

    def test_scaled(self):
        np.testing.assert_allclose(
            make().scaled(2.0).to_dense(), 2.0 * make().to_dense()
        )

    def test_submatrix(self):
        matrix = make()
        block = matrix.submatrix(slice(0, 2), slice(0, 3))
        assert block.shape == (2, 3)
        np.testing.assert_allclose(
            block.to_dense(), matrix.to_dense()[:2, :3]
        )

    def test_submatrix_rejects_step(self):
        with pytest.raises(ShapeError):
            make().submatrix(slice(0, 4, 2), slice(0, 5))


class TestNumerics:
    def test_matvec_matches_dense(self):
        matrix = make()
        x = np.arange(5, dtype=float)
        np.testing.assert_allclose(
            matrix.matvec(x), matrix.to_dense() @ x
        )

    def test_matvec_sums_duplicates(self):
        matrix = COOMatrix.from_entries((1, 1), [(0, 0, 1.0), (0, 0, 2.0)])
        assert matrix.matvec(np.ones(1))[0] == pytest.approx(3.0)

    def test_matvec_shape_check(self):
        with pytest.raises(ShapeError):
            make().matvec(np.ones(4))

    def test_row_lengths(self):
        assert make().row_lengths().tolist() == [1, 1, 0, 1]
