"""CrHCS — cross-channel migration scheduling (§3)."""

import pytest

from repro.config import ChasonConfig
from repro.errors import SchedulingError
from repro.matrices import generators
from repro.scheduling.crhcs import (
    MigrationReport,
    schedule_crhcs,
)
from repro.scheduling.pe_aware import schedule_pe_aware
from repro.scheduling.greedy import schedule_greedy_ooo


class TestMigrationBasics:
    def test_schedules_every_nonzero_once(self, small_chason, skewed_matrix):
        schedule = schedule_crhcs(skewed_matrix, small_chason)
        assert schedule.nnz == skewed_matrix.nnz
        schedule.validate()

    def test_reduces_underutilization(self, small_chason, small_serpens,
                                      skewed_matrix):
        crhcs = schedule_crhcs(skewed_matrix, small_chason)
        pe_aware = schedule_pe_aware(skewed_matrix, small_serpens)
        assert crhcs.underutilization < pe_aware.underutilization

    def test_reduces_stream_cycles(self, small_chason, small_serpens,
                                   skewed_matrix):
        crhcs = schedule_crhcs(skewed_matrix, small_chason)
        pe_aware = schedule_pe_aware(skewed_matrix, small_serpens)
        assert crhcs.stream_cycles <= pe_aware.stream_cycles

    def test_migrated_elements_flagged(self, small_chason, skewed_matrix):
        schedule = schedule_crhcs(skewed_matrix, small_chason)
        migrated = 0
        for tile in schedule.tiles:
            for grid in tile.grids:
                for _, _, element in grid.iter_elements():
                    if element.origin_channel != grid.channel_id:
                        migrated += 1
                        offset = (
                            element.origin_channel - grid.channel_id
                        ) % small_chason.sparse_channels
                        assert offset == 1  # span 1: immediate next only
        assert migrated == schedule.migrated_count
        assert migrated > 0

    def test_report_bookkeeping(self, small_chason, skewed_matrix):
        report = MigrationReport()
        schedule = schedule_crhcs(
            skewed_matrix, small_chason, report=report
        )
        assert report.migrated == schedule.migrated_count
        assert report.own_issues + report.migrated == skewed_matrix.nnz
        # Abundant padded stalls can absorb a donor entirely — the whole
        # workload rotating one hop is legal (fraction = 1).
        assert 0 < report.migration_fraction <= 1
        assert all(
            (dest - donor) % small_chason.sparse_channels ==
            small_chason.sparse_channels - 1
            for dest, donor in report.pair_counts
        )
        assert sum(report.pair_counts.values()) == report.migrated

    def test_span_zero_equals_pe_aware(self, small_chason, small_serpens,
                                       skewed_matrix):
        crhcs = schedule_crhcs(skewed_matrix, small_chason,
                               migration_span=0)
        pe_aware = schedule_pe_aware(skewed_matrix, small_serpens)
        assert crhcs.stream_cycles == pe_aware.stream_cycles
        assert crhcs.total_stalls == pe_aware.total_stalls
        assert crhcs.migrated_count == 0

    def test_wider_span_stays_competitive(self, small_chason,
                                          skewed_matrix):
        # §6.1: a wider window "can help fill idle cycles"; the greedy
        # ring makes it a heuristic, so allow small data-dependent
        # regressions while catching wholesale breakage.
        span1 = schedule_crhcs(skewed_matrix, small_chason,
                               migration_span=1)
        span2 = schedule_crhcs(skewed_matrix, small_chason,
                               migration_span=2)
        span2.validate()
        assert span2.total_stalls <= span1.total_stalls * 1.15
        assert span2.nnz == span1.nnz

    def test_invalid_span_rejected(self, small_chason, tiny_matrix):
        with pytest.raises(SchedulingError):
            schedule_crhcs(tiny_matrix, small_chason, migration_span=4)

    def test_invalid_mode_rejected(self, small_chason, tiny_matrix):
        with pytest.raises(SchedulingError):
            schedule_crhcs(tiny_matrix, small_chason, mode="teleport")

    def test_invalid_steal_tries(self, small_chason, tiny_matrix):
        with pytest.raises(SchedulingError):
            schedule_crhcs(tiny_matrix, small_chason, steal_tries=0)


class TestRawSafety:
    def test_validate_paper_config(self, paper_chason):
        matrix = generators.power_law_rows(800, 800, 6000, alpha=1.7,
                                           seed=21)
        schedule = schedule_crhcs(matrix, paper_chason)
        schedule.validate()  # raises on any RAW violation

    def test_single_hot_row_spreads_across_pes(self, small_chason):
        # One row with many non-zeros: its home PE is RAW-bound; CrHCS
        # must spread the tail over the previous channel's PEs.
        from repro.formats.coo import COOMatrix

        entries = [(1, c, 1.0) for c in range(48)]
        entries += [(r, 0, 1.0) for r in range(2, 10)]
        matrix = COOMatrix.from_entries((16, 64), entries)
        crhcs = schedule_crhcs(matrix, small_chason)
        crhcs.validate()
        pe_aware_cycles = 48 * small_chason.accumulator_latency
        assert crhcs.stream_cycles < pe_aware_cycles


class TestRebuildMode:
    def test_rebuild_schedules_everything(self, small_chason, skewed_matrix):
        schedule = schedule_crhcs(skewed_matrix, small_chason,
                                  mode="rebuild")
        assert schedule.nnz == skewed_matrix.nnz
        assert schedule.scheme == "crhcs_rebuild"
        schedule.validate()

    def test_rebuild_at_least_as_compact(self, small_chason, skewed_matrix):
        migrate = schedule_crhcs(skewed_matrix, small_chason)
        rebuild = schedule_crhcs(skewed_matrix, small_chason,
                                 mode="rebuild")
        assert rebuild.stream_cycles <= migrate.stream_cycles

    def test_rebuild_span_zero_matches_greedy(self, small_chason,
                                              small_serpens, skewed_matrix):
        rebuild = schedule_crhcs(skewed_matrix, small_chason,
                                 migration_span=0, mode="rebuild")
        greedy = schedule_greedy_ooo(skewed_matrix, small_serpens)
        assert rebuild.stream_cycles == greedy.stream_cycles
        assert rebuild.migrated_count == 0


class TestPaperShape:
    """Coarse assertions matching the published evaluation shape."""

    def test_transfer_reduction_on_graph(self, paper_chason, paper_serpens):
        matrix = generators.chung_lu_graph(3000, 30000, alpha=2.1, seed=33)
        crhcs = schedule_crhcs(matrix, paper_chason)
        pe_aware = schedule_pe_aware(matrix, paper_serpens)
        reduction = pe_aware.traffic_bytes / crhcs.traffic_bytes
        # Fig. 15: ~5-8x fewer transfers on SNAP-like graphs.
        assert reduction > 2.0

    def test_underutilization_bands(self, paper_chason, paper_serpens):
        matrix = generators.chung_lu_graph(3000, 30000, alpha=2.1, seed=34)
        serpens_pct = 100 * schedule_pe_aware(matrix,
                                              paper_serpens).underutilization
        chason_pct = 100 * schedule_crhcs(matrix,
                                          paper_chason).underutilization
        # Fig. 11: Serpens 19-96%, Chasoň 5-66% band, strict improvement.
        assert serpens_pct > 50.0
        assert chason_pct < serpens_pct
