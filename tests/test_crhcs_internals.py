"""Deep-dive tests of the CrHCS migration machinery."""

import numpy as np
import pytest

from repro.config import ChasonConfig, HBMConfig
from repro.formats.coo import COOMatrix
from repro.scheduling.base import ChannelGrid, ScheduledElement
from repro.scheduling.crhcs import (
    MigrationReport,
    migrate_grids,
    schedule_crhcs,
)
from repro.scheduling.pe_aware import pe_aware_grids
from repro.scheduling.window import tile_matrix

CFG = ChasonConfig(
    sparse_channels=3,
    pes_per_channel=2,
    accumulator_latency=3,
    column_window=32,
    row_window=64,
    scug_size=2,
    hbm=HBMConfig(total_channels=8),
)


def element(row, channel, pe, value=1.0):
    return ScheduledElement(row, 0, value, channel, pe)


def empty_grids():
    return [
        ChannelGrid(channel_id=c, pes=CFG.pes_per_channel)
        for c in range(CFG.sparse_channels)
    ]


class TestMigrateGrids:
    def test_fills_earliest_stall_first(self):
        grids = empty_grids()
        # Destination channel 0: 3 cycles, PE 0 empty everywhere.
        grids[0].ensure_length(3)
        # Donor channel 1 has one own element (row 2 → ch1, pe0).
        grids[1].place(0, 0, element(2, 1, 0))
        migrate_grids(grids, CFG, migration_span=1)
        assert grids[0].slot(0, 0) is not None
        assert grids[0].slot(0, 0).origin_channel == 1
        # Donor grid shrank to nothing.
        assert grids[1].length == 0

    def test_takes_donor_tail_first(self):
        grids = empty_grids()
        grids[0].ensure_length(1)  # exactly one stall per PE lane
        # Donor has two own elements of different rows at cycles 0 and 5.
        grids[1].place(0, 0, element(2, 1, 0, value=10.0))
        grids[1].place(5, 0, element(8, 1, 0, value=99.0))
        migrate_grids(grids, CFG, migration_span=1)
        taken = [
            grids[0].slot(0, pe)
            for pe in range(CFG.pes_per_channel)
            if grids[0].slot(0, pe) is not None
        ]
        values = {e.value for e in taken}
        # The latest element (value 99) must have been donated first.
        assert 99.0 in values
        # Donor trimmed: the remaining early element bounds its length.
        assert grids[1].length <= 1

    def test_raw_skip_retries_later_stall(self):
        grids = empty_grids()
        grids[0].ensure_length(6)
        # Donor: three elements of the SAME row on the same donor PE —
        # in the destination PE they must spread D=3 apart.
        for cycle in (0, 3, 6):
            grids[1].place(cycle, 0, element(4, 1, 0))
        report = MigrationReport()
        migrate_grids(grids, CFG, migration_span=1, report=report)
        placements = sorted(
            (cycle, pe)
            for (cycle, pe), e in grids[0].occupied.items()
        )
        by_pe = {}
        for cycle, pe in placements:
            by_pe.setdefault(pe, []).append(cycle)
        for cycles in by_pe.values():
            assert all(b - a >= 3 for a, b in zip(cycles, cycles[1:]))
        assert report.migrated == 3

    def test_same_row_may_go_to_two_pes_same_cycle(self):
        grids = empty_grids()
        grids[0].ensure_length(1)
        grids[1].place(0, 0, element(4, 1, 0))
        grids[1].place(1, 0, element(4, 1, 0, value=2.0))
        migrate_grids(grids, CFG, migration_span=1)
        occupied = list(grids[0].occupied)
        # Both copies placed in cycle 0, different PEs (different ScUGs).
        assert sorted(occupied) == [(0, 0), (0, 1)]

    def test_migrated_elements_not_redonated(self):
        grids = empty_grids()
        # ch2 donates to ch1; later ch0 donates to ch2 — but what ch1
        # received must never migrate again.
        grids[1].ensure_length(1)
        grids[2].place(0, 0, element(5, 2, 0))
        migrate_grids(grids, CFG, migration_span=1)
        # Element of channel 2 now lives in channel 1.
        assert any(
            e.origin_channel == 2
            for e in grids[1].occupied.values()
        )
        # Channel 0 (which takes from channel 1) got nothing: channel 1
        # has no OWN elements.
        assert grids[0].element_count == 0

    def test_empty_donor_gives_nothing_but_ring_closes(self):
        grids = empty_grids()
        grids[0].place(0, 0, element(0, 0, 0))
        grids[0].ensure_length(4)
        migrate_grids(grids, CFG, migration_span=1)
        # Channel 0's donor (channel 1) is empty, so channel 0 receives
        # nothing — but the ring's last step (Fig. 5d) lets channel 2
        # take channel 0's own element, leaving a stall behind.
        total = sum(grid.element_count for grid in grids)
        assert total == 1
        assert grids[2].element_count == 1
        assert grids[1].element_count == 0

    def test_span_zero_only_trims(self):
        grids = empty_grids()
        grids[0].place(0, 0, element(0, 0, 0))
        grids[0].ensure_length(9)
        migrate_grids(grids, CFG, migration_span=0)
        assert grids[0].length == 1

    def test_report_pair_counts(self):
        grids = empty_grids()
        grids[0].ensure_length(2)
        grids[1].place(0, 0, element(4, 1, 0))
        grids[1].place(0, 1, element(5, 1, 1))
        report = MigrationReport()
        migrate_grids(grids, CFG, migration_span=1, report=report)
        assert report.pair_counts.get((0, 1)) == 2
        assert report.migrated == 2


class TestRebuildInternals:
    def test_jump_over_raw_gap(self):
        # One channel, one row with 4 elements, distance 3: the rebuild
        # loop must jump over the cooldown gaps instead of sweeping.
        cfg = ChasonConfig(
            sparse_channels=2, pes_per_channel=2, accumulator_latency=3,
            column_window=32, row_window=64, scug_size=2,
            hbm=HBMConfig(total_channels=8),
        )
        matrix = COOMatrix.from_entries(
            (4, 8), [(0, c, 1.0) for c in range(4)]
        )
        schedule = schedule_crhcs(matrix, cfg, mode="rebuild")
        schedule.validate()
        assert schedule.nnz == 4
        # Row 0's home PE is (0,0); with a donor-side spread the chain
        # finishes within 2*distance + slack.
        assert schedule.stream_cycles <= 3 * 3 + 1

    def test_rebuild_report(self):
        matrix = COOMatrix.from_entries(
            (6, 8), [(1, c, 1.0) for c in range(6)] + [(0, 0, 1.0)]
        )
        report = MigrationReport()
        schedule = schedule_crhcs(matrix, CFG, mode="rebuild",
                                  report=report)
        assert report.own_issues + report.migrated == matrix.nnz
        assert schedule.migrated_count == report.migrated


class TestEndToEndMigrationSemantics:
    def test_hot_channel_drains_into_neighbour(self):
        # All work on channel 1's rows; channel 0 idle → after CrHCS the
        # total cycle count is roughly halved.
        rows = [1, 3]  # global PEs 1, 3 → channel 0 PEs... (2 PEs/ch)
        # With 3 channels x 2 PEs: row r → global pe r%6.
        # Rows 2,3 → channel 1. Load them heavily.
        entries = []
        for row in (2, 3):
            for col in range(16):
                entries.append((row, col, 1.0))
        matrix = COOMatrix.from_entries((6, 32), entries)
        pe_aware_cycles = None
        tiles = tile_matrix(matrix, CFG)
        grids = pe_aware_grids(tiles[0], CFG)
        pe_aware_cycles = max(len(g) for g in grids)
        schedule = schedule_crhcs(matrix, CFG)
        schedule.validate()
        assert schedule.stream_cycles < pe_aware_cycles
        assert schedule.migrated_count > 0

    def test_functional_after_heavy_migration(self, rng):
        matrix = COOMatrix.from_entries(
            (6, 32),
            [(2, c, float(c + 1)) for c in range(16)]
            + [(3, c, 2.0) for c in range(10)],
        )
        from repro.sim import execute_schedule

        schedule = schedule_crhcs(matrix, CFG)
        x = rng.normal(size=32).astype(np.float32)
        execution = execute_schedule(schedule, x)
        assert execution.verify(matrix.matvec(x))
        assert execution.stats["shared_fraction"] > 0


class TestMigrationReportMerge:
    def test_merge_disjoint_pairs(self):
        left = MigrationReport(migrated=3, own_issues=10, raw_skips=1)
        left.pair_counts[(0, 1)] = 3
        right = MigrationReport(migrated=5, own_issues=20, raw_skips=2)
        right.pair_counts[(1, 2)] = 5
        left.merge(right)
        assert left.migrated == 8
        assert left.own_issues == 30
        assert left.raw_skips == 3
        assert dict(left.pair_counts) == {(0, 1): 3, (1, 2): 5}

    def test_merge_overlapping_pairs_accumulates(self):
        left = MigrationReport(migrated=4)
        left.pair_counts[(0, 1)] = 3
        left.pair_counts[(2, 0)] = 1
        right = MigrationReport(migrated=7)
        right.pair_counts[(0, 1)] = 2
        right.pair_counts[(1, 2)] = 5
        left.merge(right)
        assert left.migrated == 11
        assert dict(left.pair_counts) == {(0, 1): 5, (2, 0): 1, (1, 2): 5}

    def test_merge_empty_is_identity(self):
        report = MigrationReport(migrated=2, own_issues=5, raw_skips=1)
        report.pair_counts[(0, 1)] = 2
        before = (
            report.migrated,
            report.own_issues,
            report.raw_skips,
            dict(report.pair_counts),
        )
        report.merge(MigrationReport())
        assert (
            report.migrated,
            report.own_issues,
            report.raw_skips,
            dict(report.pair_counts),
        ) == before

    def test_record_migration_feeds_counter(self):
        report = MigrationReport()
        report.record_migration(0, 1)
        report.record_migration(0, 1)
        report.record_migration(2, 0)
        assert report.migrated == 3
        assert report.pair_counts.most_common(1) == [((0, 1), 2)]
