"""CSC and ELL formats plus their conversions."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.formats.convert import (
    coo_to_csc,
    coo_to_csr,
    csc_to_coo,
    csr_to_ell,
    ell_to_coo,
    to_coo,
    to_csr,
)
from repro.formats.coo import COOMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.ell import ELLMatrix
from repro.matrices import generators


@pytest.fixture
def sample():
    return generators.uniform_random(40, 30, 200, seed=61)


class TestCSC:
    def test_roundtrip(self, sample):
        back = csc_to_coo(coo_to_csc(sample))
        np.testing.assert_allclose(back.to_dense(), sample.to_dense(),
                                   rtol=1e-6)

    def test_matvec_matches_coo(self, sample):
        x = np.random.default_rng(0).normal(size=30)
        np.testing.assert_allclose(
            coo_to_csc(sample).matvec(x), sample.matvec(x), rtol=1e-5
        )

    def test_col_access(self):
        coo = COOMatrix.from_entries(
            (4, 3), [(0, 1, 2.0), (3, 1, 4.0), (2, 0, 1.0)]
        )
        csc = coo_to_csc(coo)
        rows, values = csc.col(1)
        assert rows.tolist() == [0, 3]
        assert values.tolist() == [2.0, 4.0]
        assert csc.col_lengths().tolist() == [1, 2, 0]

    def test_col_bounds(self, sample):
        with pytest.raises(ShapeError):
            coo_to_csc(sample).col(30)

    def test_matvec_shape_check(self, sample):
        with pytest.raises(ShapeError):
            coo_to_csc(sample).matvec(np.ones(29))

    def test_validation(self):
        with pytest.raises(FormatError):
            CSCMatrix((2, 2), np.array([0, 1]), np.array([0]),
                      np.array([1.0]))
        with pytest.raises(FormatError):
            CSCMatrix((2, 2), np.array([0, 1, 1]), np.array([5]),
                      np.array([1.0]))

    def test_duplicates_summed(self):
        coo = COOMatrix.from_entries((2, 2), [(0, 0, 1.0), (0, 0, 2.0)])
        assert coo_to_csc(coo).nnz == 1

    def test_to_csr_accepts_csc(self, sample):
        csr = to_csr(coo_to_csc(sample))
        np.testing.assert_allclose(csr.to_dense(), sample.to_dense(),
                                   rtol=1e-6)


class TestELL:
    def test_roundtrip(self, sample):
        ell = csr_to_ell(coo_to_csr(sample))
        np.testing.assert_allclose(
            ell_to_coo(ell).to_dense(), sample.to_dense(), rtol=1e-6
        )

    def test_width_is_longest_row(self):
        coo = COOMatrix.from_entries(
            (3, 5), [(0, 0, 1.0), (1, 0, 1.0), (1, 1, 1.0), (1, 2, 1.0)]
        )
        ell = csr_to_ell(coo_to_csr(coo))
        assert ell.width == 3
        assert ell.nnz == 4

    def test_padding_fraction(self):
        coo = COOMatrix.from_entries(
            (2, 4), [(0, 0, 1.0), (0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0),
                     (1, 0, 1.0)]
        )
        ell = csr_to_ell(coo_to_csr(coo))
        # widths: row0=4, row1=1 → 8 slots, 5 filled.
        assert ell.padding_fraction == pytest.approx(3 / 8)

    def test_padding_grows_with_imbalance(self):
        uniform = generators.uniform_random(100, 100, 800, seed=62)
        skewed = generators.power_law_rows(100, 100, 800, alpha=1.8,
                                           seed=62)
        pad_uniform = csr_to_ell(coo_to_csr(uniform)).padding_fraction
        pad_skewed = csr_to_ell(coo_to_csr(skewed)).padding_fraction
        assert pad_skewed > pad_uniform

    def test_matvec_matches(self, sample):
        ell = csr_to_ell(coo_to_csr(sample))
        x = np.random.default_rng(1).normal(size=30)
        np.testing.assert_allclose(ell.matvec(x), sample.matvec(x),
                                   rtol=1e-5)

    def test_matvec_shape_check(self, sample):
        with pytest.raises(ShapeError):
            csr_to_ell(coo_to_csr(sample)).matvec(np.ones(31))

    def test_empty_matrix(self):
        ell = csr_to_ell(coo_to_csr(COOMatrix.from_entries((3, 3), [])))
        assert ell.nnz == 0
        assert np.all(ell.matvec(np.ones(3)) == 0.0)

    def test_validation(self):
        with pytest.raises(FormatError):
            ELLMatrix((2, 2), np.array([[0], [5]]),
                      np.array([[1.0], [1.0]], dtype=np.float32))
        with pytest.raises(FormatError):
            ELLMatrix((2, 2), np.array([[-1], [0]]),
                      np.array([[2.0], [1.0]], dtype=np.float32))

    def test_to_coo_accepts_ell(self, sample):
        ell = csr_to_ell(coo_to_csr(sample))
        assert to_coo(ell).nnz == sample.nnz
