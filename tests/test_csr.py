"""CSR matrix behaviour."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.formats.convert import coo_to_csr
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix


def make():
    coo = COOMatrix.from_entries(
        (3, 4), [(0, 1, 2.0), (0, 3, 4.0), (2, 0, -1.0)]
    )
    return coo_to_csr(coo)


class TestConstruction:
    def test_canonical_fields(self):
        csr = make()
        assert csr.indptr.tolist() == [0, 2, 2, 3]
        assert csr.indices.tolist() == [1, 3, 0]
        assert csr.nnz == 3

    def test_rejects_bad_indptr_length(self):
        with pytest.raises(FormatError):
            CSRMatrix((2, 2), np.array([0, 1]), np.array([0]),
                      np.array([1.0]))

    def test_rejects_decreasing_indptr(self):
        with pytest.raises(FormatError):
            CSRMatrix((2, 2), np.array([0, 2, 1]), np.array([0]),
                      np.array([1.0]))

    def test_rejects_indptr_nnz_mismatch(self):
        with pytest.raises(FormatError):
            CSRMatrix((2, 2), np.array([0, 1, 3]), np.array([0]),
                      np.array([1.0]))

    def test_rejects_column_out_of_bounds(self):
        with pytest.raises(FormatError):
            CSRMatrix((1, 2), np.array([0, 1]), np.array([2]),
                      np.array([1.0]))


class TestRowAccess:
    def test_row_length(self):
        csr = make()
        assert csr.row_length(0) == 2
        assert csr.row_length(1) == 0

    def test_row_contents(self):
        cols, values = make().row(0)
        assert cols.tolist() == [1, 3]
        assert values.tolist() == [2.0, 4.0]

    def test_row_bounds(self):
        with pytest.raises(ShapeError):
            make().row(3)
        with pytest.raises(ShapeError):
            make().row_length(-1)

    def test_row_lengths(self):
        assert make().row_lengths().tolist() == [2, 0, 1]


class TestNumerics:
    def test_matvec(self):
        csr = make()
        x = np.array([1.0, 2.0, 3.0, 4.0])
        np.testing.assert_allclose(csr.matvec(x), csr.to_dense() @ x)

    def test_matvec_shape_check(self):
        with pytest.raises(ShapeError):
            make().matvec(np.ones(3))

    def test_transpose_roundtrip(self):
        csr = make()
        np.testing.assert_allclose(
            csr.transpose().to_dense(), csr.to_dense().T
        )

    def test_imbalance(self):
        csr = make()
        # row lengths 2,0,1 → mean 1, max 2.
        assert csr.imbalance() == pytest.approx(2.0)

    def test_empty_row_fraction(self):
        assert make().empty_row_fraction() == pytest.approx(1 / 3)

    def test_imbalance_of_empty_matrix(self):
        empty = coo_to_csr(COOMatrix.from_entries((2, 2), []))
        assert empty.imbalance() == 0.0
