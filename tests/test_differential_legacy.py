"""Differential test: vectorized schedulers vs the legacy slot-at-a-time
builders, slot-for-slot, over a seeded mini-corpus."""

import pytest

from repro.config import DEFAULT_CHASON, DEFAULT_SERPENS
from repro.matrices.collection import corpus_specs
from repro.scheduling.crhcs import MigrationReport, schedule_crhcs
from repro.scheduling.legacy import (
    legacy_schedule_crhcs,
    legacy_schedule_pe_aware,
)
from repro.scheduling.pe_aware import schedule_pe_aware

MINI_CORPUS = list(corpus_specs(count=30, nnz_cap=4_000))


def _assert_schedules_identical(fast, slow):
    assert fast.scheme == slow.scheme
    assert len(fast.tiles) == len(slow.tiles)
    for fast_tile, slow_tile in zip(fast.tiles, slow.tiles):
        assert fast_tile.row_base == slow_tile.row_base
        assert fast_tile.col_base == slow_tile.col_base
        assert fast_tile.stream_cycles == slow_tile.stream_cycles
        for fast_grid, slow_grid in zip(fast_tile.grids, slow_tile.grids):
            assert fast_grid.length == slow_grid.length
            assert fast_grid.element_count == slow_grid.element_count
            assert dict(fast_grid.occupied.items()) == dict(
                slow_grid.occupied.items()
            )


@pytest.mark.parametrize(
    "spec", MINI_CORPUS, ids=[f"corpus{s.index}" for s in MINI_CORPUS]
)
def test_pe_aware_matches_legacy(spec):
    matrix = spec.generate()
    fast = schedule_pe_aware(matrix, DEFAULT_SERPENS)
    slow = legacy_schedule_pe_aware(matrix, DEFAULT_SERPENS)
    _assert_schedules_identical(fast, slow)


@pytest.mark.parametrize(
    "spec", MINI_CORPUS, ids=[f"corpus{s.index}" for s in MINI_CORPUS]
)
def test_crhcs_matches_legacy(spec):
    matrix = spec.generate()
    fast_report = MigrationReport()
    slow_report = MigrationReport()
    fast = schedule_crhcs(matrix, DEFAULT_CHASON, report=fast_report)
    slow = legacy_schedule_crhcs(matrix, DEFAULT_CHASON, report=slow_report)
    _assert_schedules_identical(fast, slow)
    assert fast_report.migrated == slow_report.migrated
    assert fast_report.own_issues == slow_report.own_issues
    assert fast_report.raw_skips == slow_report.raw_skips
    assert dict(fast_report.pair_counts) == dict(slow_report.pair_counts)


def test_crhcs_matches_legacy_wider_span():
    """Spans > 1 exercise the cross-step RAW tracker carry-over."""
    from dataclasses import replace

    config = replace(DEFAULT_CHASON, migration_span=2)
    for spec in MINI_CORPUS[:6]:
        matrix = spec.generate()
        fast = schedule_crhcs(matrix, config)
        slow = legacy_schedule_crhcs(matrix, config)
        _assert_schedules_identical(fast, slow)
