"""The 64-bit packed stream element (§3.2)."""

import math

import pytest

from repro.errors import FormatError
from repro.formats.element import (
    COL_BITS,
    PE_SRC_BITS,
    ROW_BITS,
    PackedElement,
    pack_element,
    pack_stream,
    unpack_element,
    unpack_stream,
)


class TestFieldLayout:
    def test_bit_budget_is_64(self):
        # 32-bit value + 15-bit row + 1-bit pvt + 3-bit PE_src + 13-bit col.
        assert 32 + ROW_BITS + 1 + PE_SRC_BITS + COL_BITS == 64

    def test_row_window_matches_bits(self):
        PackedElement(1.0, row=(1 << ROW_BITS) - 1, col=0)
        with pytest.raises(FormatError):
            PackedElement(1.0, row=1 << ROW_BITS, col=0)

    def test_col_window_matches_bits(self):
        PackedElement(1.0, row=0, col=(1 << COL_BITS) - 1)
        with pytest.raises(FormatError):
            PackedElement(1.0, row=0, col=1 << COL_BITS)

    def test_pe_src_three_bits(self):
        PackedElement(1.0, row=0, col=0, pvt=False, pe_src=7)
        with pytest.raises(FormatError):
            PackedElement(1.0, row=0, col=0, pvt=False, pe_src=8)

    def test_negative_indices_rejected(self):
        with pytest.raises(FormatError):
            PackedElement(1.0, row=-1, col=0)
        with pytest.raises(FormatError):
            PackedElement(1.0, row=0, col=-2)


class TestRoundTrip:
    @pytest.mark.parametrize("value", [0.0, 1.0, -3.25, 1e-20, 6.02e23])
    def test_value_survives(self, value):
        element = PackedElement(value, row=5, col=9)
        decoded = unpack_element(pack_element(element))
        assert decoded.value == pytest.approx(value, rel=1e-6)

    def test_metadata_survives(self):
        element = PackedElement(2.5, row=31000, col=8000, pvt=False, pe_src=5)
        decoded = unpack_element(pack_element(element))
        assert decoded.row == 31000
        assert decoded.col == 8000
        assert decoded.pvt is False
        assert decoded.pe_src == 5

    def test_private_flag_default(self):
        decoded = unpack_element(pack_element(PackedElement(1.0, 3, 4)))
        assert decoded.pvt is True
        assert decoded.is_shared is False

    def test_shared_property(self):
        shared = PackedElement(1.0, 0, 0, pvt=False, pe_src=2)
        assert shared.is_shared is True

    def test_nan_value(self):
        decoded = unpack_element(pack_element(PackedElement(math.nan, 1, 1)))
        assert math.isnan(decoded.value)

    def test_word_is_64_bits(self):
        word = pack_element(
            PackedElement(-1.5e30, row=(1 << ROW_BITS) - 1,
                          col=(1 << COL_BITS) - 1, pvt=False, pe_src=7)
        )
        assert 0 <= word < (1 << 64)

    def test_unpack_rejects_oversized_word(self):
        with pytest.raises(FormatError):
            unpack_element(1 << 64)


class TestStreams:
    def test_stream_roundtrip(self):
        elements = [
            PackedElement(float(i), row=i, col=2 * i, pvt=i % 2 == 0,
                          pe_src=i % 8)
            for i in range(16)
        ]
        data = pack_stream(elements)
        assert len(data) == 16 * 8  # 64 bits each
        decoded = unpack_stream(data)
        assert decoded == elements

    def test_stream_rejects_ragged_bytes(self):
        with pytest.raises(FormatError):
            unpack_stream(b"\x00" * 9)

    def test_empty_stream(self):
        assert unpack_stream(pack_stream([])) == []
