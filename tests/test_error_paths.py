"""Error-path and cross-module consistency coverage."""

import logging

import numpy as np
import pytest

from repro import ChasonAccelerator, SerpensAccelerator, telemetry
from repro.cluster import cluster_hedge_ms
from repro.serving import ServingEngine, serve_max_batch, serve_worker_count
from repro.config import ChasonConfig, SerpensConfig
from repro.errors import (
    ReproError,
    SchedulingError,
    ShapeError,
    SimulationError,
)
from repro.formats.coo import COOMatrix
from repro.matrices import generators
from repro.scheduling import schedule_crhcs, schedule_pe_aware
from repro.scheduling.base import ChannelGrid, ScheduledElement
from repro.sim.engine import execute_schedule
from repro.sim.rearrange import RearrangeUnit
from repro.sim.peg import ProcessingElementGroup


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        from repro import errors

        for name in (
            "ConfigError", "FormatError", "ShapeError", "SchedulingError",
            "RawHazardError", "CapacityError", "SimulationError",
            "DatasetError",
        ):
            assert issubclass(getattr(errors, name), ReproError)

    def test_shape_error_is_format_error(self):
        from repro.errors import FormatError, ShapeError

        assert issubclass(ShapeError, FormatError)

    def test_raw_hazard_is_scheduling_error(self):
        from repro.errors import RawHazardError

        assert issubclass(RawHazardError, SchedulingError)


class TestEngineErrorPaths:
    def test_corrupted_schedule_detected_by_verify(self, small_chason,
                                                   tiny_matrix, rng):
        schedule = schedule_crhcs(tiny_matrix, small_chason)
        # Corrupt one value in place.
        grid = next(
            g for t in schedule.tiles for g in t.grids if g.occupied
        )
        key = next(iter(grid.occupied))
        element = grid.occupied[key]
        grid.occupied[key] = ScheduledElement(
            element.row, element.col, element.value + 1.0,
            element.origin_channel, element.origin_pe,
        )
        x = rng.normal(size=tiny_matrix.n_cols).astype(np.float32)
        execution = execute_schedule(schedule, x)
        assert not execution.verify(tiny_matrix.matvec(x))

    def test_rearrange_rejects_wrong_peg_count(self, small_chason):
        rearrange = RearrangeUnit(small_chason)
        with pytest.raises(SimulationError):
            rearrange.merge([], {}, 0, 4, np.zeros(4))

    def test_rearrange_rejects_out_of_window_row(self, small_chason):
        pegs = [
            ProcessingElementGroup(c, small_chason)
            for c in range(small_chason.sparse_channels)
        ]
        pegs[0].load_x_window(np.ones(4, dtype=np.float32))
        # Row 32 is outside a 4-row window.
        pegs[0].pes[0].process(ScheduledElement(32, 0, 1.0, 0, 0))
        with pytest.raises(SimulationError):
            RearrangeUnit(small_chason).merge(pegs, {}, 0, 4, np.zeros(64))

    def test_double_placement_rejected(self):
        grid = ChannelGrid(channel_id=0, pes=2)
        grid.place(0, 0, ScheduledElement(0, 0, 1.0, 0, 0))
        with pytest.raises(SchedulingError):
            grid.place(0, 0, ScheduledElement(2, 0, 1.0, 0, 0))


class TestAcceleratorConsistency:
    def test_analyze_and_run_agree_on_cycles(self, small_chason,
                                             skewed_matrix, rng):
        chason = ChasonAccelerator(small_chason)
        schedule = chason.schedule(skewed_matrix)
        analyzed = chason.analyze(skewed_matrix, schedule=schedule)
        x = rng.normal(size=skewed_matrix.n_cols).astype(np.float32)
        _, executed = chason.run(skewed_matrix, x, schedule=schedule)
        assert analyzed.total_cycles == executed.total_cycles
        assert analyzed.latency_ms == pytest.approx(executed.latency_ms)

    def test_same_matrix_same_report(self, small_serpens, skewed_matrix):
        serpens = SerpensAccelerator(small_serpens)
        first = serpens.analyze(skewed_matrix)
        second = serpens.analyze(skewed_matrix)
        assert first == second  # scheduling is deterministic

    def test_frequency_is_only_latency_difference(self, skewed_matrix):
        # Same schedule shape on both clocks: latency ratio = clock ratio.
        slow = ChasonAccelerator(ChasonConfig(frequency_mhz=150.5))
        fast = ChasonAccelerator(ChasonConfig(frequency_mhz=301.0))
        slow_report = slow.analyze(skewed_matrix)
        fast_report = fast.analyze(skewed_matrix)
        assert slow_report.total_cycles == fast_report.total_cycles
        assert slow_report.latency_ms == pytest.approx(
            2 * fast_report.latency_ms
        )

    def test_traffic_accounting_is_word_aligned(self, small_serpens,
                                                skewed_matrix):
        schedule = schedule_pe_aware(skewed_matrix, small_serpens)
        word_bytes = small_serpens.pes_per_channel * 8
        assert schedule.traffic_bytes % word_bytes == 0
        assert schedule.traffic_bytes == (
            schedule.words_per_channel
            * small_serpens.sparse_channels
            * word_bytes
        )


class TestWindowingConsistency:
    def test_tiled_metrics_sum_over_tiles(self, small_chason):
        matrix = generators.uniform_random(600, 300, 2400, seed=91)
        schedule = schedule_crhcs(matrix, small_chason)
        assert len(schedule.tiles) > 1
        assert schedule.nnz == sum(t.nnz for t in schedule.tiles)
        assert schedule.stream_cycles == sum(
            t.stream_cycles for t in schedule.tiles
        )
        assert schedule.total_stalls == sum(
            t.total_stalls for t in schedule.tiles
        )

    def test_row_partitioning_respects_capacity(self, small_chason, rng):
        matrix = generators.uniform_random(600, 60, 1200, seed=92)
        schedule = schedule_crhcs(matrix, small_chason,
                                  max_rows_per_pass=100)
        assert all(t.row_base % 100 == 0 for t in schedule.tiles)
        x = rng.normal(size=60).astype(np.float32)
        execution = execute_schedule(schedule, x)
        # Note: executing with a non-default row window still verifies
        # because the engine groups tiles by their actual row bases.
        assert execution.verify(matrix.matvec(x))

    def test_empty_matrix_report(self, small_chason):
        matrix = COOMatrix.from_entries((8, 8), [])
        report = ChasonAccelerator(small_chason).analyze(matrix)
        assert report.nnz == 0
        assert report.latency_ms > 0  # invocation floor
        assert report.underutilization_pct == 0.0


class TestRuntimeKnobFallbacks:
    """Invalid ``REPRO_*`` values warn once and fall back, never raise."""

    @pytest.fixture(autouse=True)
    def _fresh_warnings(self):
        telemetry.reset_warnings()
        yield
        telemetry.reset_warnings()

    def test_invalid_serve_batch_falls_back_and_warns_once(
        self, monkeypatch, caplog
    ):
        monkeypatch.setenv("REPRO_SERVE_BATCH", "a lot")
        with caplog.at_level(logging.WARNING):
            assert serve_max_batch() == 8
            assert serve_max_batch() == 8  # second parse: silent
        assert caplog.text.count("REPRO_SERVE_BATCH") == 1

    def test_invalid_serve_workers_falls_back_and_warns_once(
        self, monkeypatch, caplog
    ):
        monkeypatch.setenv("REPRO_SERVE_WORKERS", "4.5")
        with caplog.at_level(logging.WARNING):
            assert serve_worker_count() == 4
            assert serve_worker_count() == 4
        assert caplog.text.count("REPRO_SERVE_WORKERS") == 1

    def test_invalid_cluster_hedge_falls_back_and_warns_once(
        self, monkeypatch, caplog
    ):
        monkeypatch.setenv("REPRO_CLUSTER_HEDGE_MS", "soon")
        with caplog.at_level(logging.WARNING):
            assert cluster_hedge_ms() == 100
            assert cluster_hedge_ms() == 100
        assert caplog.text.count("REPRO_CLUSTER_HEDGE_MS") == 1

    def test_fallback_counts_in_telemetry_warning_bucket(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SERVE_BATCH", "banana")
        with telemetry.capture() as cap:
            assert serve_max_batch() == 8
        warnings = [r for r in cap.records
                    if r["name"] == "telemetry.warnings"]
        assert len(warnings) == 1
        assert warnings[0]["attrs"]["key"] == "invalid_serve_batch"

    def test_engine_survives_garbage_knob_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_WORKERS", "??")
        monkeypatch.setenv("REPRO_SERVE_BATCH", "-")
        engine = ServingEngine()
        assert engine.workers == 4 and engine.max_batch == 8

    def test_invalid_audit_rate_falls_back_and_warns_once(
        self, monkeypatch, caplog
    ):
        from repro.estimator.fidelity import (
            DEFAULT_AUDIT_RATE,
            resolve_audit_rate,
        )

        monkeypatch.setenv("REPRO_AUDIT_RATE", "sometimes")
        with caplog.at_level(logging.WARNING):
            assert resolve_audit_rate() == DEFAULT_AUDIT_RATE
            assert resolve_audit_rate() == DEFAULT_AUDIT_RATE
        assert caplog.text.count("REPRO_AUDIT_RATE") == 1

    def test_non_finite_audit_rate_falls_back(self, monkeypatch, caplog):
        from repro.estimator.fidelity import (
            DEFAULT_AUDIT_RATE,
            resolve_audit_rate,
        )

        for raw in ("nan", "inf", "-inf"):
            telemetry.reset_warnings()
            monkeypatch.setenv("REPRO_AUDIT_RATE", raw)
            with caplog.at_level(logging.WARNING):
                assert resolve_audit_rate() == DEFAULT_AUDIT_RATE

    def test_out_of_range_audit_rate_clamps_and_warns(
        self, monkeypatch, caplog
    ):
        from repro.estimator.fidelity import resolve_audit_rate

        monkeypatch.setenv("REPRO_AUDIT_RATE", "5.0")
        with caplog.at_level(logging.WARNING):
            assert resolve_audit_rate() == 1.0
        assert "clamping" in caplog.text
        telemetry.reset_warnings()
        monkeypatch.setenv("REPRO_AUDIT_RATE", "-0.25")
        with caplog.at_level(logging.WARNING):
            assert resolve_audit_rate() == 0.0

    def test_invalid_tenant_weights_fall_back_and_warn_once(
        self, monkeypatch, caplog
    ):
        from repro.tenancy import parse_tenant_weights

        for raw in ("alice=3", "alice:heavy", "alice:-1", "alice:0",
                    "alice:nan", ":3"):
            telemetry.reset_warnings()
            monkeypatch.setenv("REPRO_TENANT_WEIGHTS", raw)
            caplog.clear()
            with caplog.at_level(logging.WARNING):
                assert parse_tenant_weights() == {}
                assert parse_tenant_weights() == {}  # second parse: silent
            assert caplog.text.count("REPRO_TENANT_WEIGHTS") == 1

    def test_valid_tenant_weights_parse(self, monkeypatch):
        from repro.tenancy import parse_tenant_weights

        monkeypatch.setenv("REPRO_TENANT_WEIGHTS", " alice:3, bob:0.5 ")
        assert parse_tenant_weights() == {"alice": 3.0, "bob": 0.5}

    def test_invalid_tenant_quota_falls_back_and_warns_once(
        self, monkeypatch, caplog
    ):
        from repro.tenancy import tenant_quota_fraction

        monkeypatch.setenv("REPRO_TENANT_QUOTA", "half")
        with caplog.at_level(logging.WARNING):
            assert tenant_quota_fraction() == 1.0
            assert tenant_quota_fraction() == 1.0
        assert caplog.text.count("REPRO_TENANT_QUOTA") == 1

    def test_invalid_burn_shed_falls_back_and_warns_once(
        self, monkeypatch, caplog
    ):
        from repro.tenancy import tenant_burn_shed_threshold

        monkeypatch.setenv("REPRO_TENANT_BURN_SHED", "hot")
        with caplog.at_level(logging.WARNING):
            assert tenant_burn_shed_threshold() == 1.0
            assert tenant_burn_shed_threshold() == 1.0
        assert caplog.text.count("REPRO_TENANT_BURN_SHED") == 1

    def test_invalid_autoscale_knobs_fall_back_and_warn_once(
        self, monkeypatch, caplog
    ):
        from repro.cluster.autoscaler import (
            autoscale_interval_s,
            autoscale_max_devices,
            autoscale_min_devices,
        )

        cases = (
            ("REPRO_AUTOSCALE_MIN", "few", autoscale_min_devices, 1),
            ("REPRO_AUTOSCALE_MAX", "4.5", autoscale_max_devices, 8),
            ("REPRO_AUTOSCALE_INTERVAL", "fast", autoscale_interval_s,
             1.0),
        )
        for env, raw, fn, default in cases:
            telemetry.reset_warnings()
            monkeypatch.setenv(env, raw)
            caplog.clear()
            with caplog.at_level(logging.WARNING):
                assert fn() == default
                assert fn() == default
            assert caplog.text.count(env) == 1
            monkeypatch.delenv(env)

    def test_autoscale_bounds_clamp_instead_of_raising(self, monkeypatch):
        from repro.cluster.autoscaler import (
            autoscale_interval_s,
            autoscale_min_devices,
        )

        monkeypatch.setenv("REPRO_AUTOSCALE_MIN", "-3")
        assert autoscale_min_devices() == 1
        monkeypatch.setenv("REPRO_AUTOSCALE_INTERVAL", "0")
        assert autoscale_interval_s() == 0.01

    def test_tenancy_knobs_are_registered(self):
        from repro.knobs import knob

        for name in (
            "REPRO_TENANT_WEIGHTS", "REPRO_TENANT_QUOTA",
            "REPRO_TENANT_BURN_SHED", "REPRO_AUTOSCALE_MIN",
            "REPRO_AUTOSCALE_MAX", "REPRO_AUTOSCALE_INTERVAL",
            "REPRO_AUTOSCALE_UP_DEPTH", "REPRO_AUTOSCALE_DOWN_DEPTH",
            "REPRO_AUTOSCALE_UP_LATENCY_MS",
        ):
            assert knob(name).subsystem in ("tenancy", "autoscale")

    def test_audit_rate_fallback_counts_in_warning_bucket(
        self, monkeypatch
    ):
        from repro.estimator.fidelity import resolve_audit_rate

        monkeypatch.setenv("REPRO_AUDIT_RATE", "banana")
        with telemetry.capture() as cap:
            resolve_audit_rate()
        warnings = [r for r in cap.records
                    if r["name"] == "telemetry.warnings"]
        assert len(warnings) == 1
        assert warnings[0]["attrs"]["key"] == "invalid_audit_rate"

    def test_explicit_audit_rate_beats_garbage_environment(
        self, monkeypatch
    ):
        from repro.estimator.fidelity import resolve_audit_rate

        monkeypatch.setenv("REPRO_AUDIT_RATE", "??")
        assert resolve_audit_rate(0.25) == 0.25


class TestSessionKnobFallbacks:
    """Invalid ``REPRO_SESSION_*`` values warn once and fall back."""

    @pytest.fixture(autouse=True)
    def _fresh_warnings(self):
        telemetry.reset_warnings()
        yield
        telemetry.reset_warnings()

    def test_invalid_session_max_falls_back_and_warns_once(
        self, monkeypatch, caplog
    ):
        from repro.sessions import session_max

        monkeypatch.setenv("REPRO_SESSION_MAX", "many")
        with caplog.at_level(logging.WARNING):
            assert session_max() == 4096
            assert session_max() == 4096  # second parse: silent
        assert caplog.text.count("REPRO_SESSION_MAX") == 1

    def test_invalid_iter_batch_falls_back_and_warns_once(
        self, monkeypatch, caplog
    ):
        from repro.sessions import session_iter_batch

        monkeypatch.setenv("REPRO_SESSION_ITER_BATCH", "2.5")
        with caplog.at_level(logging.WARNING):
            assert session_iter_batch() == 8
            assert session_iter_batch() == 8
        assert caplog.text.count("REPRO_SESSION_ITER_BATCH") == 1

    def test_invalid_state_budget_falls_back_and_warns_once(
        self, monkeypatch, caplog
    ):
        from repro.serving.resident import (
            DEFAULT_STATE_BUDGET,
            session_state_budget,
        )

        monkeypatch.setenv("REPRO_SESSION_STATE_BUDGET", "64 MiB")
        with caplog.at_level(logging.WARNING):
            assert session_state_budget() == DEFAULT_STATE_BUDGET
            assert session_state_budget() == DEFAULT_STATE_BUDGET
        assert caplog.text.count("REPRO_SESSION_STATE_BUDGET") == 1

    def test_session_fallbacks_count_in_warning_bucket(
        self, monkeypatch
    ):
        from repro.sessions import session_max

        monkeypatch.setenv("REPRO_SESSION_MAX", "banana")
        with telemetry.capture() as cap:
            session_max()
        warnings = [r for r in cap.records
                    if r["name"] == "telemetry.warnings"]
        assert len(warnings) == 1
        assert warnings[0]["attrs"]["key"] == "invalid_session_max"

    def test_minimums_are_clamped(self, monkeypatch):
        from repro.sessions import session_iter_batch, session_max

        monkeypatch.setenv("REPRO_SESSION_MAX", "0")
        monkeypatch.setenv("REPRO_SESSION_ITER_BATCH", "-3")
        assert session_max() == 1
        assert session_iter_batch() == 1


class TestTolerantRequestFile:
    """``load_request_file`` skips malformed lines instead of raising."""

    @pytest.fixture(autouse=True)
    def _fresh_warnings(self):
        telemetry.reset_warnings()
        yield
        telemetry.reset_warnings()

    def _write(self, tmp_path, lines):
        path = tmp_path / "requests.jsonl"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return str(path)

    def test_malformed_lines_skip_with_one_warning(
        self, tmp_path, caplog
    ):
        from repro.serving import load_request_file

        path = self._write(tmp_path, [
            '{"matrix": "CollegeMsg"}',
            "not json at all",
            '{"matrix": "wiki-Vote", "priorty": 1}',
            "# a comment",
            '{"matrix": "wiki-Vote", "priority": 2}',
        ])
        with caplog.at_level(logging.WARNING):
            requests = load_request_file(path)
        assert [r.source for r in requests] == ["CollegeMsg", "wiki-Vote"]
        assert requests[1].priority == 2
        assert caplog.text.count("skipped 2 malformed") == 1
        # First failure is named with its line number.
        assert "line 2" in caplog.text

    def test_skips_count_in_telemetry(self, tmp_path):
        from repro.serving import load_request_file

        path = self._write(tmp_path, [
            "garbage", '{"matrix": "CollegeMsg"}',
        ])
        with telemetry.capture() as cap:
            requests = load_request_file(path)
        assert len(requests) == 1
        skipped = [r for r in cap.records
                   if r["name"] == "serving.request_file.skipped"]
        assert len(skipped) == 1 and skipped[0]["value"] == 1

    def test_clean_file_stays_silent(self, tmp_path, caplog):
        from repro.serving import load_request_file

        path = self._write(tmp_path, ['{"matrix": "CollegeMsg"}'])
        with caplog.at_level(logging.WARNING):
            requests = load_request_file(path)
        assert len(requests) == 1
        assert "malformed" not in caplog.text
