"""The tiered-fidelity estimator: prediction, calibration, audit.

The property at the heart of the tier: for **every** registered scheme,
the calibrated analytical estimate stays within its calibration entry's
tolerance of the exact simulator — checked here on a slice of the
golden corpus (the smallest Table 2 matrices plus the uniform controls
the calibration was fitted on).  The audit tests then close the loop:
a deliberately miscalibrated table must trip the differential gate and
demote the scheme back to the exact tier.
"""

import logging
import time

import pytest

from repro import telemetry
from repro.errors import ConfigError, EstimationError
from repro.estimator import (
    DEFAULT_CALIBRATION,
    PREDICTABLE_SCHEMES,
    CalibrationSample,
    CalibrationTable,
    SchemeCalibration,
    audit_draw,
    fit_scheme,
    predict_schedule,
    resolve_audit_rate,
    resolve_fidelity,
    should_audit,
)
from repro.matrices.generators import uniform_random
from repro.matrices.named import generate_named
from repro.pipeline import EstimateResult, PipelineResult, PipelineRunner
from repro.pipeline.store import ArtifactStore
from repro.scheduling.registry import get_scheme, iter_schemes
from repro.serving import ServingEngine, SpMVRequest

#: The corpus slice the tolerance property runs on: the four smallest
#: Table 2 matrices plus the two uniform controls from the fit corpus.
CORPUS_NAMES = ("c52", "CollegeMsg", "as-735", "reorientation_4")


@pytest.fixture(scope="module")
def corpus():
    matrices = {name: generate_named(name) for name in CORPUS_NAMES}
    for index in range(2):
        matrices[f"uniform-{index}"] = uniform_random(
            128, 128, 1_800, seed=1_000 + index
        )
    return matrices


@pytest.fixture(scope="module")
def runner():
    return PipelineRunner(ArtifactStore(capacity=256))


class TestToleranceProperty:
    def test_every_scheme_is_calibrated(self):
        assert set(PREDICTABLE_SCHEMES) == {
            spec.name for spec in iter_schemes()
        }
        assert set(PREDICTABLE_SCHEMES) <= set(DEFAULT_CALIBRATION.schemes)

    @pytest.mark.parametrize("scheme", PREDICTABLE_SCHEMES)
    def test_estimate_within_calibrated_tolerance(
        self, scheme, corpus, runner
    ):
        entry = DEFAULT_CALIBRATION.for_scheme(scheme)
        for name, matrix in corpus.items():
            estimate = runner.estimate(matrix, scheme)
            exact = runner.analyze(matrix, scheme, fidelity="exact")
            exact_total = exact.cycles.total
            rel = (
                abs(estimate.predicted.cycles.total - exact_total)
                / max(exact_total, 1)
            )
            assert rel <= entry.tolerance, (
                f"{scheme} on {name}: {100 * rel:.2f}% error exceeds "
                f"the calibrated ±{100 * entry.tolerance:.2f}%"
            )
            report = estimate.report
            assert report.scheme == scheme
            assert report.nnz == matrix.nnz
            assert (report.n_rows, report.n_cols) == matrix.shape

    @pytest.mark.parametrize("scheme", PREDICTABLE_SCHEMES)
    def test_stalls_never_negative(self, scheme, corpus):
        config = get_scheme(scheme).default_config
        for matrix in corpus.values():
            predicted = predict_schedule(matrix, scheme, config)
            assert predicted.total_stalls >= 0
            assert predicted.stream_cycles >= 1


class TestFidelityResolution:
    @pytest.fixture(autouse=True)
    def _fresh_warnings(self):
        telemetry.reset_warnings()
        yield
        telemetry.reset_warnings()

    def test_explicit_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_FIDELITY", "estimate")
        assert resolve_fidelity("exact") == "exact"
        assert resolve_fidelity(None) == "estimate"

    def test_environment_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_FIDELITY", "auto")
        assert resolve_fidelity(None, default="exact") == "auto"
        monkeypatch.delenv("REPRO_FIDELITY")
        assert resolve_fidelity(None, default="exact") == "exact"

    def test_invalid_explicit_tier_raises(self):
        with pytest.raises(ConfigError):
            resolve_fidelity("approximate")

    def test_invalid_env_tier_warns_once_and_falls_back(
        self, monkeypatch, caplog
    ):
        monkeypatch.setenv("REPRO_FIDELITY", "approximate")
        with caplog.at_level(logging.WARNING):
            assert resolve_fidelity(None, default="exact") == "exact"
            assert resolve_fidelity(None, default="exact") == "exact"
        assert caplog.text.count("REPRO_FIDELITY") == 1

    def test_invalid_audit_rate_warns_and_falls_back(
        self, monkeypatch, caplog
    ):
        monkeypatch.setenv("REPRO_AUDIT_RATE", "often")
        with caplog.at_level(logging.WARNING):
            assert resolve_audit_rate(None) == 0.05
        assert "REPRO_AUDIT_RATE" in caplog.text

    def test_audit_rate_clamps_to_unit_interval(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT_RATE", "7")
        assert resolve_audit_rate(None) == 1.0
        assert resolve_audit_rate(-0.5) == 0.0

    def test_audit_sampling_is_deterministic_and_bounded(self):
        fingerprints = [f"{i:08x}feedface" for i in range(64)]
        draws = [audit_draw(fp) for fp in fingerprints]
        assert draws == [audit_draw(fp) for fp in fingerprints]
        assert all(0.0 <= draw < 1.0 for draw in draws)
        assert not any(should_audit(fp, 0.0) for fp in fingerprints)
        assert all(should_audit(fp, 1.0) for fp in fingerprints)


class TestCalibrationTable:
    def test_missing_scheme_raises_estimation_error(self):
        with pytest.raises(EstimationError):
            DEFAULT_CALIBRATION.for_scheme("no_such_scheme")

    def test_digest_tracks_entries(self):
        entry = SchemeCalibration(
            scheme="pe_aware", scale=2.0, tolerance=0.5,
            max_observed_error=0.4, fitted_on=3,
        )
        patched = DEFAULT_CALIBRATION.with_entry(entry)
        assert patched.digest() != DEFAULT_CALIBRATION.digest()
        assert patched.for_scheme("pe_aware").scale == 2.0
        # The original table is untouched.
        assert DEFAULT_CALIBRATION.for_scheme("pe_aware").scale != 2.0

    def test_fit_scheme_median_scale_and_tolerance_margin(self):
        samples = [
            CalibrationSample(raw_stream=100, exact_stream=110,
                              predicted_fixed=50, exact_total=160),
            CalibrationSample(raw_stream=200, exact_stream=220,
                              predicted_fixed=50, exact_total=270),
            CalibrationSample(raw_stream=400, exact_stream=440,
                              predicted_fixed=50, exact_total=490),
        ]
        entry = fit_scheme("pe_aware", samples)
        assert entry.scale == pytest.approx(1.1)
        # A perfect post-scale fit still keeps the tolerance floor.
        assert entry.tolerance >= 0.02
        assert entry.fitted_on == 3

    def test_refit_invalidates_the_estimate_cache(self, corpus):
        store = ArtifactStore(capacity=64)
        runner = PipelineRunner(store)
        matrix = corpus["uniform-0"]
        first = runner.estimate(matrix, "pe_aware")
        patched = DEFAULT_CALIBRATION.with_entry(SchemeCalibration(
            scheme="pe_aware", scale=2.0, tolerance=0.5,
            max_observed_error=0.4, fitted_on=1,
        ))
        second = runner.estimate(matrix, "pe_aware",
                                 calibration=patched)
        assert (first.estimate_artifact.fingerprint
                != second.estimate_artifact.fingerprint)
        assert (second.predicted.stream_cycles
                > first.predicted.stream_cycles)


class TestAnalyzeDispatch:
    def test_estimate_tier_returns_estimate_result(self, corpus, runner):
        result = runner.analyze(corpus["uniform-0"], "pe_aware",
                                fidelity="estimate")
        assert isinstance(result, EstimateResult)
        assert result.fidelity == "estimate"

    def test_exact_tier_returns_pipeline_result(self, corpus, runner):
        result = runner.analyze(corpus["uniform-0"], "pe_aware",
                                fidelity="exact")
        assert isinstance(result, PipelineResult)
        assert result.fidelity == "exact"

    def test_scheduler_kwargs_force_the_exact_tier(self, corpus, runner):
        result = runner.analyze(
            corpus["uniform-0"], "crhcs", fidelity="auto",
            max_rows_per_pass=64,
        )
        assert isinstance(result, PipelineResult)

    def test_auto_falls_back_when_calibration_is_missing(self, corpus):
        runner = PipelineRunner()
        empty = CalibrationTable({})
        auto = runner.analyze(corpus["uniform-0"], "pe_aware",
                              fidelity="auto", calibration=empty)
        assert isinstance(auto, PipelineResult)
        with pytest.raises(EstimationError):
            runner.analyze(corpus["uniform-0"], "pe_aware",
                           fidelity="estimate", calibration=empty)


class TestAuditGate:
    def _await_demotion(self, engine, scheme, timeout=30.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if scheme in engine.demoted_schemes():
                return True
            time.sleep(0.01)
        return False

    def test_miscalibration_demotes_the_scheme_to_exact(self):
        telemetry.reset_warnings()
        bad = DEFAULT_CALIBRATION.with_entry(SchemeCalibration(
            scheme="pe_aware", scale=5.0, tolerance=0.01,
            max_observed_error=0.0, fitted_on=1,
        ))
        engine = ServingEngine(
            workers=1, fidelity="estimate", audit_rate=1.0,
            calibration=bad,
        )
        engine.start()
        try:
            first = engine.submit(SpMVRequest(
                uniform_random(96, 96, 900, seed=41), scheme="pe_aware"
            )).result(timeout=30.0)
            assert first.ok and first.fidelity == "estimate"
            assert self._await_demotion(engine, "pe_aware")
            summary = engine.audit_summary()
            assert summary["violations"] >= 1
            assert summary["max_rel_error"] > bad.for_scheme(
                "pe_aware"
            ).tolerance
            # Post-demotion requests run the exact tier.
            second = engine.submit(SpMVRequest(
                uniform_random(96, 96, 900, seed=42), scheme="pe_aware"
            )).result(timeout=30.0)
            assert second.ok and second.fidelity == "exact"
        finally:
            engine.shutdown(drain=True)
        telemetry.reset_warnings()

    def test_well_calibrated_audit_passes_clean(self):
        engine = ServingEngine(
            workers=1, fidelity="estimate", audit_rate=1.0,
        )
        engine.start()
        try:
            responses = [
                engine.submit(SpMVRequest(
                    uniform_random(96, 96, 900, seed=50 + index),
                    scheme=PREDICTABLE_SCHEMES[
                        index % len(PREDICTABLE_SCHEMES)
                    ],
                )).result(timeout=30.0)
                for index in range(6)
            ]
        finally:
            engine.shutdown(drain=True)
        assert all(r.ok and r.fidelity == "estimate" for r in responses)
        summary = engine.audit_summary()
        assert summary["sampled"] == 6
        assert summary["violations"] == 0
        assert summary["demoted"] == []

    def test_exact_tier_never_audits(self):
        engine = ServingEngine(workers=1, fidelity="exact",
                               audit_rate=1.0)
        engine.start()
        try:
            response = engine.submit(SpMVRequest(
                uniform_random(96, 96, 900, seed=60)
            )).result(timeout=30.0)
        finally:
            engine.shutdown(drain=True)
        assert response.ok and response.fidelity == "exact"
        assert engine.audit_summary()["sampled"] == 0
