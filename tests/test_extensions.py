"""HBM bridge/microbench, row reordering, and pipeline traces."""

import numpy as np
import pytest

from repro.config import ChasonConfig
from repro.errors import ConfigError, SchedulingError, ShapeError, SimulationError
from repro.hbm.microbench import ChannelMicrobenchModel
from repro.hbm.stream import stack_from_schedule
from repro.matrices import generators
from repro.scheduling import schedule_crhcs, schedule_pe_aware
from repro.scheduling.reorder import (
    RowPermutation,
    balancing_permutation,
    reorder_rows,
)
from repro.sim.trace import trace_schedule


class TestStackFromSchedule:
    def test_word_counts_match_schedule(self, small_chason, skewed_matrix):
        schedule = schedule_crhcs(skewed_matrix, small_chason)
        stack = stack_from_schedule(schedule)
        assert len(stack) == small_chason.sparse_channels
        assert stack.stream_cycles == schedule.stream_cycles
        assert stack.total_elements == schedule.nnz
        # The 512-bit word always carries 8 lanes; configurations with
        # fewer PEs leave the upper lanes as permanent padding stalls.
        lanes = 8
        assert stack.total_stalls == (
            stack.stream_cycles * lanes * len(stack) - schedule.nnz
        )

    def test_metadata_encoded(self, small_chason, skewed_matrix):
        schedule = schedule_crhcs(skewed_matrix, small_chason)
        stack = stack_from_schedule(schedule)
        shared = 0
        for channel in stack:
            for word in channel.words:
                for element in word.slots:
                    if element is not None and element.is_shared:
                        shared += 1
        assert shared == schedule.migrated_count

    def test_serpens_schedule_all_private(self, small_serpens,
                                          small_matrix):
        schedule = schedule_pe_aware(small_matrix, small_serpens)
        stack = stack_from_schedule(schedule)
        for channel in stack:
            for word in channel.words:
                for element in word.slots:
                    assert element is None or element.pvt

    def test_span_two_rejected(self, small_chason, skewed_matrix):
        schedule = schedule_crhcs(skewed_matrix, small_chason,
                                  migration_span=2)
        if schedule.migrated_count == 0:  # pragma: no cover
            pytest.skip("no migration happened")
        donors = set()
        for tile in schedule.tiles:
            for grid in tile.grids:
                for _, _, element in grid.iter_elements():
                    if element.origin_channel != grid.channel_id:
                        donors.add(
                            (element.origin_channel - grid.channel_id)
                            % small_chason.sparse_channels
                        )
        if donors == {1}:  # pragma: no cover - data dependent
            pytest.skip("span-2 run only used the immediate neighbour")
        with pytest.raises(SchedulingError):
            stack_from_schedule(schedule)


class TestMicrobench:
    def test_curve_is_monotone_then_flat(self):
        model = ChannelMicrobenchModel()
        sweep = model.sweep()
        widths = sorted(sweep)
        values = [sweep[w] for w in widths]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(model.peak_gbps)

    def test_ideal_width_is_512(self):
        # §3.2 / Lu et al.: 512 bits is the ideal Rd/Wr module width.
        assert ChannelMicrobenchModel().ideal_width() == 512

    def test_narrow_ports_request_limited(self):
        model = ChannelMicrobenchModel()
        assert model.effective_bandwidth_gbps(64) < model.peak_gbps / 4

    def test_unsupported_width(self):
        with pytest.raises(ConfigError):
            ChannelMicrobenchModel().effective_bandwidth_gbps(100)

    def test_validation(self):
        with pytest.raises(ConfigError):
            ChannelMicrobenchModel(peak_gbps=-1)
        with pytest.raises(ConfigError):
            ChannelMicrobenchModel(burst_beats=0)


class TestRowReordering:
    def test_permutation_validity(self, paper_chason):
        matrix = generators.power_law_rows(500, 500, 4000, alpha=1.7,
                                           seed=71)
        permutation = balancing_permutation(matrix, paper_chason)
        assert permutation.n_rows == 500
        np.testing.assert_array_equal(
            np.sort(permutation.forward), np.arange(500)
        )

    def test_apply_and_restore(self, paper_chason, rng):
        matrix = generators.power_law_rows(400, 300, 3000, alpha=1.7,
                                           seed=72)
        permuted, permutation = reorder_rows(matrix, paper_chason)
        x = rng.normal(size=300)
        y_permuted = permuted.matvec(x)
        np.testing.assert_allclose(
            permutation.restore_vector(y_permuted),
            matrix.matvec(x),
            rtol=1e-6,
        )

    def test_balances_channel_load(self, paper_chason):
        # Bounded row lengths: balance is achievable (a single unbounded
        # hub row would dominate any assignment).
        matrix = generators.power_law_rows(2000, 2000, 20000, alpha=1.6,
                                           max_row_nnz=60, seed=73)
        permuted, _ = reorder_rows(matrix, paper_chason)
        original = schedule_pe_aware(matrix, paper_chason)
        balanced = schedule_pe_aware(permuted, paper_chason)
        original_loads = np.array(original.channel_elements())
        balanced_loads = np.array(balanced.channel_elements())
        assert balanced_loads.std() <= original_loads.std() + 1e-9
        # Balancing helps the schedule too (or at least never hurts much).
        assert balanced.stream_cycles <= original.stream_cycles * 1.05

    def test_reorder_cannot_replace_migration(self, paper_chason):
        # The paper's point: software balancing does not fill the
        # intra-window stalls that CrHCS fills.
        matrix = generators.chung_lu_graph(2000, 20000, alpha=2.1, seed=74)
        permuted, _ = reorder_rows(matrix, paper_chason)
        reordered = schedule_pe_aware(permuted, paper_chason)
        crhcs = schedule_crhcs(matrix, paper_chason)
        assert crhcs.stream_cycles < reordered.stream_cycles

    def test_bad_permutation_rejected(self):
        with pytest.raises(ShapeError):
            RowPermutation(forward=np.array([0, 0, 1]))

    def test_restore_shape_check(self, paper_chason):
        matrix = generators.diagonal(16, seed=1)
        _, permutation = reorder_rows(matrix, paper_chason)
        with pytest.raises(ShapeError):
            permutation.restore_vector(np.zeros(5))


class TestTrace:
    def _small_schedule(self, small_chason):
        matrix = generators.uniform_random(32, 32, 100, seed=75)
        return schedule_crhcs(matrix, small_chason).tiles[0]

    def test_trace_covers_all_pes(self, small_chason):
        tile = self._small_schedule(small_chason)
        trace = trace_schedule(tile)
        assert len(trace.timelines) == (
            small_chason.sparse_channels * small_chason.pes_per_channel
        )
        assert trace.cycles == tile.stream_cycles

    def test_occupancy_matches_eq4(self, small_chason):
        tile = self._small_schedule(small_chason)
        trace = trace_schedule(tile)
        busy = sum(t.busy_cycles for t in trace.timelines.values())
        assert busy == tile.nnz
        assert trace.mean_occupancy == pytest.approx(
            1.0 - tile.underutilization, abs=1e-9
        )

    def test_render_marks_migration(self, small_chason):
        tile = self._small_schedule(small_chason)
        text = trace_schedule(tile).render()
        if tile.migrated_count:
            assert "*" in text
        assert "...." in text or tile.total_stalls == 0

    def test_render_limit(self, small_chason):
        matrix = generators.power_law_rows(64, 64, 600, alpha=1.5, seed=76)
        tile = schedule_crhcs(matrix, small_chason).tiles[0]
        trace = trace_schedule(tile)
        if trace.cycles <= 4:  # pragma: no cover - data dependent
            pytest.skip("schedule too small to exercise the limit")
        with pytest.raises(SimulationError):
            trace.render(max_cycles=4)

    def test_busiest_pe(self, small_chason):
        tile = self._small_schedule(small_chason)
        trace = trace_schedule(tile)
        busiest = trace.busiest_pe()
        assert busiest.busy_cycles == max(
            t.busy_cycles for t in trace.timelines.values()
        )

    def test_unknown_timeline(self, small_chason):
        tile = self._small_schedule(small_chason)
        with pytest.raises(SimulationError):
            trace_schedule(tile).timeline(99, 0)
