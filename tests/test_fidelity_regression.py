"""Fidelity regression: the headline reproduction shape, pinned.

These tests freeze the qualitative results the whole reproduction exists
to show, on the two smallest Table 2 matrices (so they stay fast).  A
refactor that silently weakens the baseline, strengthens it past the
paper's behaviour, or breaks the migration machinery fails here before
it reaches the benchmark suite.
"""

import pytest

from repro.analysis.experiments import compare_on_named
from repro.config import DEFAULT_CHASON, DEFAULT_SERPENS
from repro.power.energy import energy_for_run
from repro.resources.model import chason_resources, serpens_resources


@pytest.fixture(scope="module")
def small_named():
    # CollegeMsg (20 296 nnz, SNAP) and c52 (20 278 nnz, SuiteSparse).
    return {
        item.name: item
        for item in compare_on_named(names=["CollegeMsg", "c52"])
    }


class TestHeadlineShape:
    def test_serpens_underutilization_band(self, small_named):
        # Fig. 11: graph-like matrices land deep in the Serpens tail.
        for item in small_named.values():
            assert 85.0 < item.serpens.underutilization_pct < 99.9

    def test_chason_strictly_improves(self, small_named):
        for item in small_named.values():
            assert (
                item.chason.underutilization_pct
                < item.serpens.underutilization_pct
            )
            assert item.speedup > 1.3
            assert item.transfer_reduction > 2.0

    def test_speedup_band(self, small_named):
        # Fig. 15 territory: multi-x but physically plausible (< the
        # underutilization bound x the clock ratio).
        for item in small_named.values():
            bound = (
                1.0
                / (1.0 - item.serpens.underutilization_pct / 100.0)
                * (301.0 / 223.0)
            )
            assert 1.3 < item.speedup < bound

    def test_energy_efficiency_gain_band(self, small_named):
        # Table 3: every matrix gains; gains stay within an order of
        # magnitude of the published 1.27x-3.67x band.
        for item in small_named.values():
            assert 1.0 < item.energy_efficiency_improvement < 12.0

    def test_latency_magnitudes_are_microseconds(self, small_named):
        # Table 3's smallest matrices run in tens of microseconds.
        for item in small_named.values():
            assert 0.001 < item.chason.latency_ms < 1.0
            assert item.chason.latency_ms < item.serpens.latency_ms < 5.0

    def test_migration_actually_happened(self, small_named):
        for item in small_named.values():
            assert 0 < item.chason.migrated <= item.chason.nnz
            assert item.serpens.migrated == 0


class TestStaticArtifacts:
    def test_clock_frequencies_pinned(self):
        assert DEFAULT_CHASON.frequency_mhz == 301.0
        assert DEFAULT_SERPENS.frequency_mhz == 223.0

    def test_table1_pinned(self):
        chason = chason_resources()
        serpens = serpens_resources()
        assert (chason.urams, serpens.urams) == (512, 384)
        assert chason.dsps == 1254 and serpens.dsps == 798

    def test_energy_model_hbm_dominates_at_peak(self):
        # Fig. 10's message survives the per-run attribution: at full
        # streaming utilisation HBM is the largest dynamic consumer.
        report = energy_for_run(
            latency_seconds=1e-3,
            traffic_bytes=int(273e9 * 1e-3),
            macs=int(128 * 301e6 * 1e-3),
        )
        assert report.hbm_j > report.compute_j
        assert report.hbm_j > report.onchip_memory_j
