"""ASCII figures, the real-dataset loader, and workload characterization."""

import numpy as np
import pytest

from repro.analysis.characterize import characterize, rank_by_benefit
from repro.analysis.figures import (
    render_bar_groups,
    render_histogram,
    render_pdf_curves,
)
from repro.analysis.stats import gaussian_kde_pdf
from repro.errors import ConfigError, DatasetError
from repro.formats.io import save_matrix_market
from repro.matrices import generators
from repro.matrices.named import NAMED_MATRICES
from repro.matrices.suite_loader import dataset_path, load_named


class TestFigureRendering:
    def test_pdf_curves_render(self):
        rng = np.random.default_rng(0)
        curves = {
            "serpens": gaussian_kde_pdf(rng.normal(70, 8, 200)),
            "chason": gaussian_kde_pdf(rng.normal(30, 8, 200)),
        }
        text = render_pdf_curves(curves)
        assert "S=serpens" in text and "C=chason" in text
        assert "S" in text and "C" in text
        # Peaks land on the correct halves of the canvas.
        for line in text.splitlines():
            if "C" in line and "=" not in line:
                first_c = line.index("C")
                assert first_c < len(line)
                break

    def test_pdf_curves_validation(self):
        with pytest.raises(ConfigError):
            render_pdf_curves({})
        with pytest.raises(ConfigError):
            render_pdf_curves(
                {"x": gaussian_kde_pdf([50.0] * 5)}, width=4
            )

    def test_histogram_counts(self):
        text = render_histogram([10.0] * 3 + [90.0], bins=10,
                                label="demo")
        assert text.startswith("demo")
        assert " 3" in text and " 1" in text

    def test_histogram_empty_rejected(self):
        with pytest.raises(ConfigError):
            render_histogram([])

    def test_bar_groups(self):
        text = render_bar_groups(
            [("DY", 4.5), ("RE", 2.0)], reference=1.0
        )
        assert "DY" in text and "4.50x" in text
        assert "|" in text  # reference marker

    def test_bar_groups_validation(self):
        with pytest.raises(ConfigError):
            render_bar_groups([])
        with pytest.raises(ConfigError):
            render_bar_groups([("x", 0.0)])


class TestSuiteLoader:
    def test_synthetic_fallback(self, tmp_path):
        matrix, source = load_named("CollegeMsg", data_dir=tmp_path)
        assert source == "synthetic"
        assert matrix.nnz == NAMED_MATRICES["CollegeMsg"].nnz

    def test_real_matrixmarket_preferred(self, tmp_path):
        real = generators.uniform_random(50, 50, 120, seed=9)
        save_matrix_market(real, tmp_path / "CollegeMsg.mtx")
        matrix, source = load_named("CollegeMsg", data_dir=tmp_path)
        assert source == "real"
        assert matrix.shape == (50, 50)
        assert matrix.nnz == 120

    def test_real_snap_edgelist(self, tmp_path):
        (tmp_path / "wiki-Vote.txt").write_text("# c\n0 1\n1 2\n1 2\n")
        matrix, source = load_named("wiki-Vote", data_dir=tmp_path)
        assert source == "real"
        # duplicates summed by normalisation
        assert matrix.nnz == 2
        assert matrix.to_dense()[1, 2] == pytest.approx(2.0)

    def test_env_var_directory(self, tmp_path, monkeypatch):
        real = generators.diagonal(8, seed=1)
        save_matrix_market(real, tmp_path / "as-735.mtx")
        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path))
        matrix, source = load_named("as-735")
        assert source == "real"
        assert matrix.nnz == 8

    def test_unknown_name(self, tmp_path):
        with pytest.raises(DatasetError):
            load_named("unknown", data_dir=tmp_path)

    def test_dataset_path_suffix_priority(self, tmp_path):
        (tmp_path / "c52.mtx").write_text("x")
        (tmp_path / "c52.txt").write_text("x")
        assert dataset_path("c52", tmp_path).suffix == ".mtx"
        assert dataset_path("missing", tmp_path) is None


class TestCharacterize:
    def test_fields_populated(self):
        matrix = generators.chung_lu_graph(800, 8000, alpha=2.1, seed=3)
        character = characterize(matrix)
        assert character.nnz == matrix.nnz
        assert character.row_cv > 0
        assert 0 <= character.gini <= 1
        assert (
            0
            <= character.predicted_chason_underutilization
            <= character.predicted_serpens_underutilization
            <= 100
        )

    def test_graphs_predicted_to_benefit(self):
        graph = generators.chung_lu_graph(800, 8000, alpha=2.1, seed=4)
        assert characterize(graph).migration_worthwhile

    def test_balanced_predicted_low_benefit(self):
        banded = generators.banded(512, 512, bandwidth=3, fill=1.0, seed=5)
        character = characterize(banded)
        assert (
            character.predicted_serpens_underutilization
            < characterize(
                generators.chung_lu_graph(800, 8000, alpha=2.1, seed=4)
            ).predicted_serpens_underutilization
        )

    def test_ranking_matches_measured_extremes(self, paper_chason,
                                               paper_serpens):
        """The predictor's *ranking* agrees with measured schedules on
        clearly separated workloads."""
        from repro.scheduling import schedule_crhcs, schedule_pe_aware

        workloads = [
            ("banded", generators.banded(1024, 1024, 3, fill=1.0, seed=6)),
            ("uniform", generators.uniform_random(1000, 1000, 5000,
                                                  seed=6)),
            ("graph", generators.chung_lu_graph(1000, 10000, alpha=2.1,
                                                seed=6)),
        ]
        predicted = {
            name: character.predicted_improvement
            for name, character in rank_by_benefit(workloads)
        }
        measured = {}
        for name, matrix in workloads:
            serpens = schedule_pe_aware(matrix, paper_serpens)
            chason = schedule_crhcs(matrix, paper_chason)
            measured[name] = 100 * (
                serpens.underutilization - chason.underutilization
            )
        # The banded workload benefits least in both rankings.
        assert min(predicted, key=predicted.get) == "banded"
        assert min(measured, key=measured.get) == "banded"
        # The graph workload is ranked beneficial by both.
        assert predicted["graph"] > predicted["banded"]
        assert measured["graph"] > measured["banded"]

    def test_rank_order(self):
        workloads = [
            ("banded", generators.banded(512, 512, 3, fill=1.0, seed=7)),
            ("graph", generators.chung_lu_graph(800, 8000, alpha=2.1,
                                                seed=7)),
        ]
        ranked = rank_by_benefit(workloads)
        assert ranked[0][0] == "graph"
