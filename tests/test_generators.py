"""Matrix generators."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.matrices import generators
from repro.matrices.stats import matrix_stats


class TestUniform:
    def test_exact_nnz(self):
        matrix = generators.uniform_random(100, 100, 500, seed=1)
        assert matrix.nnz == 500

    def test_deterministic(self):
        a = generators.uniform_random(50, 50, 200, seed=9)
        b = generators.uniform_random(50, 50, 200, seed=9)
        np.testing.assert_array_equal(a.rows, b.rows)
        np.testing.assert_array_equal(a.cols, b.cols)
        np.testing.assert_array_equal(a.values, b.values)

    def test_different_seeds_differ(self):
        a = generators.uniform_random(50, 50, 200, seed=1)
        b = generators.uniform_random(50, 50, 200, seed=2)
        assert not np.array_equal(a.rows, b.rows)

    def test_no_zero_values(self):
        matrix = generators.uniform_random(60, 60, 600, seed=4)
        assert np.all(np.abs(matrix.values) >= 1e-3)

    def test_unique_coordinates(self):
        matrix = generators.uniform_random(40, 40, 800, seed=3)
        keys = matrix.rows * 40 + matrix.cols
        assert len(np.unique(keys)) == matrix.nnz

    def test_rejects_overfull(self):
        with pytest.raises(DatasetError):
            generators.uniform_random(3, 3, 10, seed=0)


class TestPowerLaw:
    def test_row_skew(self):
        matrix = generators.power_law_rows(500, 500, 4000, alpha=1.8, seed=2)
        stats = matrix_stats(matrix)
        assert stats.imbalance > 4  # hub rows dominate

    def test_max_row_cap(self):
        matrix = generators.power_law_rows(
            500, 500, 4000, alpha=1.4, max_row_nnz=30, seed=2
        )
        # The cap clips the expected share; allow sampling slack.
        assert matrix.row_lengths().max() <= 60

    def test_rejects_bad_alpha(self):
        with pytest.raises(DatasetError):
            generators.power_law_rows(10, 10, 5, alpha=0.0)


class TestGraphs:
    def test_chung_lu_square(self):
        matrix = generators.chung_lu_graph(300, 2000, alpha=2.1, seed=5)
        assert matrix.shape == (300, 300)
        assert matrix.nnz == 2000

    def test_chung_lu_rejects_alpha_below_one(self):
        with pytest.raises(DatasetError):
            generators.chung_lu_graph(100, 200, alpha=1.0)

    def test_rmat_dimensions(self):
        matrix = generators.kronecker_rmat(8, 1500, seed=6)
        assert matrix.shape == (256, 256)
        assert matrix.nnz == 1500

    def test_rmat_rejects_bad_probabilities(self):
        with pytest.raises(DatasetError):
            generators.kronecker_rmat(4, 10, probabilities=(1, 1, 1, 1))

    def test_rmat_skewed_quadrants(self):
        matrix = generators.kronecker_rmat(9, 4000, seed=7)
        # The default (0.57,0.19,0.19,0.05) parameters concentrate mass in
        # the top-left quadrant.
        top_left = np.sum((matrix.rows < 256) & (matrix.cols < 256))
        assert top_left > matrix.nnz * 0.35


class TestStructured:
    def test_banded_within_band(self):
        matrix = generators.banded(50, 50, bandwidth=2, seed=1)
        assert np.all(np.abs(matrix.rows - matrix.cols) <= 2)

    def test_banded_full_fill_count(self):
        matrix = generators.banded(10, 10, bandwidth=1, fill=1.0, seed=1)
        assert matrix.nnz == 10 + 9 + 9

    def test_banded_rejects_bad_fill(self):
        with pytest.raises(DatasetError):
            generators.banded(10, 10, 1, fill=0.0)

    def test_block_diagonal_confined(self):
        matrix = generators.block_diagonal(4, 8, block_fill=0.5, seed=2)
        assert matrix.shape == (32, 32)
        assert np.all(matrix.rows // 8 == matrix.cols // 8)

    def test_block_diagonal_skew_increases_imbalance(self):
        flat = generators.block_diagonal(6, 32, 0.2, row_skew=0.0, seed=3)
        skewed = generators.block_diagonal(6, 32, 0.2, row_skew=1.5, seed=3)
        assert (
            matrix_stats(skewed).imbalance > matrix_stats(flat).imbalance
        )

    def test_diagonal(self):
        matrix = generators.diagonal(7, seed=0)
        assert matrix.nnz == 7
        assert np.all(matrix.rows == matrix.cols)
