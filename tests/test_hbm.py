"""HBM channel/stack/stream/timing models."""

import pytest

from repro.config import HBMConfig
from repro.errors import CapacityError, ConfigError, FormatError
from repro.formats.element import PackedElement
from repro.hbm.channel import ChannelBuffer, ChannelWord
from repro.hbm.stack import HBMStack
from repro.hbm.stream import build_channel_words, stream_traffic_bytes
from repro.hbm.timing import estimate_transfer


def word_with(count):
    slots = [None] * 8
    for i in range(count):
        slots[i] = PackedElement(1.0, row=i, col=i)
    return ChannelWord(slots=tuple(slots))


class TestChannelWord:
    def test_exactly_eight_slots(self):
        with pytest.raises(FormatError):
            ChannelWord(slots=(None,) * 7)

    def test_stall_accounting(self):
        word = word_with(3)
        assert word.element_count == 3
        assert word.stall_count == 5

    def test_element_for_pe(self):
        word = word_with(2)
        assert word.element_for_pe(1).row == 1
        assert word.element_for_pe(5) is None
        with pytest.raises(FormatError):
            word.element_for_pe(8)


class TestChannelBuffer:
    def test_streaming_order(self):
        buffer = ChannelBuffer(0)
        buffer.extend([word_with(1), word_with(2)])
        assert buffer.pop().element_count == 1
        assert buffer.pop().element_count == 2
        assert buffer.pop() is None
        assert buffer.exhausted

    def test_reset_stream(self):
        buffer = ChannelBuffer(0)
        buffer.push(word_with(1))
        buffer.pop()
        buffer.reset_stream()
        assert not buffer.exhausted

    def test_capacity_limit(self):
        buffer = ChannelBuffer(0, capacity_words=1)
        buffer.push(word_with(0))
        with pytest.raises(CapacityError):
            buffer.push(word_with(0))

    def test_accounting(self):
        buffer = ChannelBuffer(0)
        buffer.extend([word_with(8), word_with(4)])
        assert buffer.element_count == 12
        assert buffer.stall_count == 4
        assert buffer.traffic_bytes == 2 * 64

    def test_rejects_negative_id(self):
        with pytest.raises(FormatError):
            ChannelBuffer(-1)


class TestHBMStack:
    def test_allocation(self):
        stack = HBMStack(HBMConfig(), used_channels=19)
        assert len(stack) == 19
        assert stack.bandwidth_gbps() == pytest.approx(19 * 14.37)

    def test_rejects_overallocation(self):
        with pytest.raises(ConfigError):
            HBMStack(HBMConfig(total_channels=4), used_channels=5)

    def test_lockstep_stream_cycles(self):
        stack = HBMStack(HBMConfig(), used_channels=2)
        stack[0].extend([word_with(8)] * 3)
        stack[1].extend([word_with(8)] * 5)
        assert stack.stream_cycles == 5
        assert stack.total_words == 8

    def test_aggregate_stats(self):
        stack = HBMStack(HBMConfig(), used_channels=2)
        stack[0].push(word_with(6))
        stack[1].push(word_with(2))
        assert stack.total_elements == 8
        assert stack.total_stalls == 8
        assert stack.total_traffic_bytes == 128

    def test_reset_streams(self):
        stack = HBMStack(HBMConfig(), used_channels=1)
        stack[0].push(word_with(1))
        stack[0].pop()
        assert stack.exhausted
        stack.reset_streams()
        assert not stack.exhausted


class TestStreamHelpers:
    def test_build_channel_words(self):
        element = PackedElement(1.0, 0, 0)
        words = build_channel_words([[element] + [None] * 7])
        assert len(words) == 1
        assert words[0].element_count == 1

    def test_build_rejects_ragged(self):
        with pytest.raises(FormatError):
            build_channel_words([[None] * 7])

    def test_traffic_bytes(self):
        assert stream_traffic_bytes([10, 10], dense_vector_bytes=100) == (
            20 * 64 + 100
        )


class TestTiming:
    def test_transfer_estimate(self):
        estimate = estimate_transfer(64_000_000, 64.0)
        assert estimate.seconds == pytest.approx(1e-3)
        assert estimate.milliseconds == pytest.approx(1.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigError):
            estimate_transfer(-1, 10.0)
        with pytest.raises(ConfigError):
            estimate_transfer(10, 0.0)
