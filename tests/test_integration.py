"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro import (
    ChasonAccelerator,
    SerpensAccelerator,
    generate_named,
    geometric_mean,
    reference_spmv,
)
from repro.analysis.experiments import compare_on_named
from repro.config import ChasonConfig, SerpensConfig
from repro.matrices import generators


class TestPaperConfigEndToEnd:
    """Full-size (16x8) configurations on small real-shaped matrices."""

    def test_graph_matrix_full_flow(self):
        matrix = generators.chung_lu_graph(2000, 15000, alpha=2.1, seed=41)
        x = np.random.default_rng(41).normal(size=2000).astype(np.float32)
        reference = reference_spmv(matrix, x)

        chason = ChasonAccelerator()
        serpens = SerpensAccelerator()
        chason_exec, chason_report = chason.run(matrix, x)
        serpens_exec, serpens_report = serpens.run(matrix, x)

        assert chason_exec.verify(reference)
        assert serpens_exec.verify(reference)
        # The headline claims, in shape:
        assert chason_report.latency_ms < serpens_report.latency_ms
        assert (
            chason_report.underutilization_pct
            < serpens_report.underutilization_pct
        )
        assert chason_report.traffic_bytes < serpens_report.traffic_bytes
        assert (
            chason_report.energy_efficiency
            > serpens_report.energy_efficiency
        )

    def test_multiwindow_matrix_full_flow(self):
        # Spans several column windows (8192) and one row window.
        matrix = generators.power_law_rows(
            20000, 20000, 60000, alpha=1.7, seed=43
        )
        x = np.random.default_rng(43).normal(size=20000).astype(np.float32)
        chason_exec, _ = ChasonAccelerator().run(matrix, x)
        assert chason_exec.verify(reference_spmv(matrix, x))

    def test_iterative_solver_style_loop(self):
        # Three chained SpMVs (power iteration) stay correct.
        matrix = generators.uniform_random(1500, 1500, 12000, seed=44)
        chason = ChasonAccelerator()
        schedule = chason.schedule(matrix)
        x = np.ones(1500, dtype=np.float32)
        reference = x.astype(np.float64)
        for _ in range(3):
            execution, _ = chason.run(matrix, x, schedule=schedule)
            reference = reference_spmv(matrix, reference)
            assert execution.verify(reference, rtol=1e-3)
            norm = np.max(np.abs(execution.y)) or 1.0
            x = (execution.y / norm).astype(np.float32)
            reference = reference / norm


class TestNamedMatrixShape:
    def test_named_comparison_matches_paper_direction(self):
        results = compare_on_named(names=["CollegeMsg", "as-735",
                                          "wb-cs-stanford"])
        speedups = [r.speedup for r in results]
        reductions = [r.transfer_reduction for r in results]
        # Fig. 15: every SNAP matrix shows a speedup and a multi-x
        # transfer reduction.
        assert all(s > 1.5 for s in speedups)
        assert all(r > 1.5 for r in reductions)
        assert geometric_mean(speedups) > 2.0


class TestScaledConfigurations:
    """The architecture generalises beyond the published sizes."""

    @pytest.mark.parametrize("channels,pes", [(2, 2), (8, 4), (16, 8)])
    def test_functional_across_sizes(self, channels, pes):
        chason = ChasonAccelerator(
            ChasonConfig(
                sparse_channels=channels,
                pes_per_channel=pes,
                scug_size=min(4, pes),
                column_window=128,
                row_window=512,
            )
        )
        matrix = generators.uniform_random(300, 300, 2500, seed=45)
        x = np.random.default_rng(45).normal(size=300).astype(np.float32)
        execution, _ = chason.run(matrix, x)
        assert execution.verify(reference_spmv(matrix, x))

    def test_more_channels_means_fewer_cycles(self):
        matrix = generators.uniform_random(4000, 4000, 40000, seed=46)
        narrow = ChasonAccelerator(
            ChasonConfig(sparse_channels=4)
        ).analyze(matrix)
        wide = ChasonAccelerator(
            ChasonConfig(sparse_channels=16)
        ).analyze(matrix)
        assert wide.stream_cycles < narrow.stream_cycles
