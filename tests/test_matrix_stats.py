"""Matrix statistics."""

import pytest

from repro.errors import ConfigError
from repro.formats.coo import COOMatrix
from repro.matrices import generators
from repro.matrices.stats import matrix_stats


class TestMatrixStats:
    def test_basic_fields(self):
        matrix = generators.diagonal(10, seed=0)
        stats = matrix_stats(matrix)
        assert stats.nnz == 10
        assert stats.row_mean == pytest.approx(1.0)
        assert stats.row_max == 1
        assert stats.imbalance == pytest.approx(1.0)
        assert stats.empty_row_fraction == 0.0

    def test_gini_balanced_is_zero(self):
        stats = matrix_stats(generators.diagonal(20, seed=1))
        assert stats.gini == pytest.approx(0.0, abs=1e-9)

    def test_gini_increases_with_skew(self):
        uniform = generators.uniform_random(200, 200, 2000, seed=2)
        skewed = generators.power_law_rows(200, 200, 2000, alpha=1.8, seed=2)
        assert matrix_stats(skewed).gini > matrix_stats(uniform).gini

    def test_empty_matrix(self):
        stats = matrix_stats(COOMatrix.from_entries((5, 5), []))
        assert stats.nnz == 0
        assert stats.gini == 0.0
        assert stats.row_max == 0

    def test_as_row_format(self):
        text = matrix_stats(generators.diagonal(10, seed=0)).as_row()
        assert "nnz=10" in text
        assert "10x10" in text

    def test_accepts_csr(self):
        from repro.formats.convert import coo_to_csr

        coo = generators.uniform_random(30, 30, 100, seed=4)
        assert matrix_stats(coo_to_csr(coo)).nnz == matrix_stats(coo).nnz
