"""Table 2 named matrices and the 800-matrix corpus."""

import pytest

from repro.errors import DatasetError
from repro.matrices.collection import (
    CORPUS_SIZE,
    corpus_specs,
    generate_corpus,
)
from repro.matrices.named import (
    NAMED_MATRICES,
    generate_named,
    named_specs,
)


class TestNamedSpecs:
    def test_twenty_matrices(self):
        assert len(named_specs()) == 20

    def test_collections_split_ten_ten(self):
        assert len(named_specs("SuiteSparse")) == 10
        assert len(named_specs("SNAP")) == 10

    def test_unknown_collection(self):
        with pytest.raises(DatasetError):
            named_specs("GraphChallenge")

    def test_table2_nnz_values(self):
        # Spot-check Table 2 rows.
        assert NAMED_MATRICES["wiki-Vote"].nnz == 103689
        assert NAMED_MATRICES["mycielskian12"].nnz == 407200
        assert NAMED_MATRICES["trans5"].nnz == 749800
        assert NAMED_MATRICES["CollegeMsg"].density_pct == pytest.approx(0.562)

    def test_dimension_consistent_with_density(self):
        for spec in named_specs():
            implied = spec.nnz / (spec.dimension**2)
            assert implied == pytest.approx(spec.density, rel=0.05)


class TestGenerateNamed:
    @pytest.mark.parametrize(
        "name", ["CollegeMsg", "as-735", "c52", "dynamicSoaringProblem_8"]
    )
    def test_exact_nnz(self, name):
        matrix = generate_named(name)
        assert matrix.nnz == NAMED_MATRICES[name].nnz

    def test_density_close_to_table2(self):
        matrix = generate_named("wiki-Vote")
        spec = NAMED_MATRICES["wiki-Vote"]
        assert matrix.density == pytest.approx(spec.density, rel=0.15)

    def test_deterministic(self):
        a = generate_named("CollegeMsg")
        b = generate_named("CollegeMsg")
        assert (a.rows == b.rows).all()
        assert (a.values == b.values).all()

    def test_seed_override_changes_pattern(self):
        a = generate_named("CollegeMsg")
        b = generate_named("CollegeMsg", seed=42)
        assert not (a.rows == b.rows).all()

    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            generate_named("not-a-matrix")


class TestCorpus:
    def test_spec_count(self):
        assert len(corpus_specs()) == CORPUS_SIZE

    def test_prefix_is_stable(self):
        first = corpus_specs(count=10)
        again = corpus_specs(count=10)
        assert first == again
        assert corpus_specs(count=50)[:10] == first

    def test_count_bounds(self):
        with pytest.raises(DatasetError):
            corpus_specs(count=0)
        with pytest.raises(DatasetError):
            corpus_specs(count=CORPUS_SIZE + 1)

    def test_density_range(self):
        for spec in corpus_specs(count=100):
            assert 1e-7 < spec.density <= 0.2

    def test_nnz_cap_preserves_density(self):
        uncapped = corpus_specs(count=50)
        capped = corpus_specs(count=50, nnz_cap=5000)
        for a, b in zip(uncapped, capped):
            assert b.nnz <= max(5000, 64 * 64)
            if a.nnz > 5000 and b.n_rows > 64:
                assert b.density == pytest.approx(a.density, rel=0.6)

    def test_generate_corpus_members(self):
        matrices = list(generate_corpus(count=5, nnz_cap=2000))
        assert len(matrices) == 5
        for spec, matrix in zip(corpus_specs(5, 2000), matrices):
            assert matrix.shape == (spec.n_rows, spec.n_cols)
            # generators may fall slightly short on dense corner cases but
            # never exceed the spec
            assert matrix.nnz <= spec.nnz

    def test_families_all_present(self):
        families = {spec.family for spec in corpus_specs()}
        assert families == {"graph", "power_law", "uniform", "banded",
                            "block"}
