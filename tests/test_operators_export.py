"""PDE operators and result export."""

import csv

import numpy as np
import pytest

from repro.analysis.experiments import (
    compare_on_corpus,
    compare_on_named,
    gpu_cpu_comparison,
)
from repro.analysis.export import (
    baseline_records,
    comparison_records,
    corpus_records,
    read_json,
    write_csv,
    write_json,
)
from repro.errors import ConfigError, ShapeError
from repro.matrices.operators import (
    convection_diffusion_1d,
    laplacian_1d,
    laplacian_2d,
)


class TestOperators:
    def test_laplacian_1d_structure(self):
        matrix = laplacian_1d(5)
        dense = matrix.to_dense()
        assert np.all(np.diag(dense) == 2.0)
        assert np.all(np.diag(dense, 1) == -1.0)
        assert np.all(np.diag(dense, -1) == -1.0)
        assert matrix.nnz == 5 + 2 * 4

    def test_laplacian_1d_spd(self):
        dense = laplacian_1d(16).to_dense()
        np.testing.assert_allclose(dense, dense.T)
        assert np.min(np.linalg.eigvalsh(dense)) > 0

    def test_laplacian_1d_single_point(self):
        assert laplacian_1d(1).nnz == 1

    def test_laplacian_2d_row_sums(self):
        # Interior rows sum to 0; boundary rows are positive.
        dense = laplacian_2d(4).to_dense()
        sums = dense.sum(axis=1)
        interior = 1 * 4 + 1  # node (1,1)
        assert sums[interior] == pytest.approx(0.0)
        assert sums[0] > 0

    def test_laplacian_2d_spd(self):
        dense = laplacian_2d(5).to_dense()
        np.testing.assert_allclose(dense, dense.T)
        assert np.min(np.linalg.eigvalsh(dense)) > 0

    def test_convection_diffusion_nonsymmetric(self):
        dense = convection_diffusion_1d(8, peclet=0.5).to_dense()
        assert not np.allclose(dense, dense.T)
        # Diagonally dominant.
        for i in range(8):
            off = np.sum(np.abs(dense[i])) - abs(dense[i, i])
            assert abs(dense[i, i]) >= off

    def test_convection_diffusion_reduces_to_laplacian(self):
        np.testing.assert_allclose(
            convection_diffusion_1d(6, peclet=0.0).to_dense(),
            laplacian_1d(6).to_dense(),
        )

    def test_validation(self):
        with pytest.raises(ShapeError):
            laplacian_1d(0)
        with pytest.raises(ShapeError):
            laplacian_2d(-1)
        with pytest.raises(ShapeError):
            convection_diffusion_1d(4, peclet=1.5)

    def test_solver_integration(self, small_chason):
        from repro.core.chason import ChasonAccelerator
        from repro.solvers import conjugate_gradient

        matrix = laplacian_1d(64)
        b = matrix.matvec(np.ones(64))
        result = conjugate_gradient(
            ChasonAccelerator(small_chason), matrix, b, tolerance=1e-5
        )
        assert result.converged


class TestExport:
    @pytest.fixture(scope="class")
    def named(self):
        return compare_on_named(names=["CollegeMsg", "as-735"])

    def test_comparison_records(self, named):
        records = comparison_records(named)
        assert len(records) == 2
        assert records[0]["id"] == "CM"
        assert records[0]["speedup"] > 1

    def test_json_roundtrip(self, named, tmp_path):
        path = write_json(comparison_records(named), tmp_path / "r.json")
        loaded = read_json(path)
        assert loaded[1]["name"] == "as-735"

    def test_csv_export(self, named, tmp_path):
        path = write_csv(comparison_records(named), tmp_path / "r.csv")
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert float(rows[0]["speedup"]) > 1

    def test_csv_rejects_empty(self, tmp_path):
        with pytest.raises(ConfigError):
            write_csv([], tmp_path / "empty.csv")

    def test_corpus_records(self):
        result = compare_on_corpus(count=3, nnz_cap=2000)
        records = corpus_records(result)
        assert len(records) == 3
        assert all(
            r["chason_underutilization_pct"]
            <= r["serpens_underutilization_pct"] + 1e-9
            for r in records
        )

    def test_baseline_records(self):
        rows = gpu_cpu_comparison(count=2, nnz_cap=2000)
        records = baseline_records(rows)
        assert len(records) == 6
        assert {r["baseline"] for r in records} == {
            "rtx4090", "rtxa6000", "i9"
        }

    def test_write_json_accepts_dataclass(self, tmp_path):
        result = compare_on_corpus(count=2, nnz_cap=2000)
        path = write_json(result, tmp_path / "corpus.json")
        loaded = read_json(path)
        assert loaded["count"] == 2
