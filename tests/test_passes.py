"""Tests for the Schedule-IR pass pipeline.

Covers the golden differential (every registered scheme, byte-identical
to the pre-refactor monolithic builders over the 30-matrix mini-corpus),
incremental rescheduling (random in-place edits → byte-identical output
with strictly fewer tile-passes executed), the per-pass artifact cache
(a MigratePass-only config change reuses cached BuildGridPass
artifacts), registry pass-list validation, the ``schedule.pass.*``
telemetry spans, and the CLI surfaces.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.cli import main
from repro.config import DEFAULT_SERPENS
from repro.errors import ConfigError
from repro.formats.coo import COOMatrix
from repro.matrices.collection import corpus_specs
from repro.pipeline import PipelineRunner
from repro.pipeline.stages import ScheduleStage
from repro.pipeline.store import ArtifactStore
from repro.scheduling.base import TiledSchedule
from repro.scheduling.cache import ScheduleCache
from repro.scheduling.crhcs import schedule_crhcs, schedule_crhcs_tile
from repro.scheduling.greedy import schedule_greedy_tile
from repro.scheduling.passes import (
    IncrementalScheduler,
    PassArtifactCache,
    PassManager,
    known_pass_names,
    pass_cache_capacity,
    resolve_passes,
    schedules_identical,
    validate_pass_name,
)
from repro.scheduling.pe_aware import schedule_pe_aware_tile
from repro.scheduling.registry import get_scheme, register_scheme, unregister
from repro.scheduling.row_based import schedule_row_based_tile
from repro.scheduling.row_split import schedule_row_split_tile
from repro.scheduling.stats import MigrationReport
from repro.scheduling.window import tile_matrix
from repro.telemetry.summarize import (
    summarize_records,
    summarize_schedule_passes,
)

MINI_CORPUS = list(corpus_specs(count=30, nnz_cap=4_000))

#: scheme name → the pre-refactor per-tile builder it must reproduce.
REFERENCE_TILE = {
    "pe_aware": lambda tile, config: schedule_pe_aware_tile(tile, config),
    "greedy_ooo": lambda tile, config: schedule_greedy_tile(tile, config),
    "row_based": lambda tile, config: schedule_row_based_tile(tile, config),
    "row_split": lambda tile, config: schedule_row_split_tile(tile, config),
    "crhcs": lambda tile, config: schedule_crhcs_tile(tile, config),
    "crhcs_rebuild": lambda tile, config: schedule_crhcs_tile(
        tile, config, mode="rebuild"
    ),
}


def _reference_schedule(matrix, name, config):
    tiles = tile_matrix(matrix, config, 0)
    built = [REFERENCE_TILE[name](tile, config) for tile in tiles]
    return TiledSchedule(
        config=config,
        tiles=built,
        scheme=built[0].scheme if built else name,
        n_rows=matrix.n_rows,
        n_cols=matrix.n_cols,
    )


def _multi_tile_matrix(seed, n=1200, nnz=8_000):
    rng = np.random.default_rng(seed)
    return COOMatrix(
        shape=(n, n),
        rows=rng.integers(0, n, nnz),
        cols=rng.integers(0, n, nnz),
        values=rng.random(nnz) + 0.5,
    ).sum_duplicates()


# ---------------------------------------------------------------------------
# golden differential: pass pipeline vs monolithic builders
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "spec", MINI_CORPUS, ids=[f"corpus{s.index}" for s in MINI_CORPUS]
)
def test_pass_pipeline_matches_monolithic_builders(spec):
    matrix = spec.generate()
    for name in sorted(REFERENCE_TILE):
        scheme = get_scheme(name)
        config = scheme.default_config
        fast = scheme.scheduler(matrix, config)
        slow = _reference_schedule(matrix, name, config)
        assert schedules_identical(fast, slow), name


def test_crhcs_migration_report_matches_tile_composition():
    matrix = MINI_CORPUS[0].generate()
    scheme = get_scheme("crhcs")
    config = scheme.default_config
    pipeline_report = MigrationReport()
    scheme.scheduler(matrix, config, report=pipeline_report)
    tile_report = MigrationReport()
    for tile in tile_matrix(matrix, config, 0):
        schedule_crhcs_tile(tile, config, report=tile_report)
    assert pipeline_report.migrated == tile_report.migrated
    assert pipeline_report.own_issues == tile_report.own_issues
    assert pipeline_report.raw_skips == tile_report.raw_skips
    assert dict(pipeline_report.pair_counts) == dict(tile_report.pair_counts)


def test_every_registered_scheme_declares_a_pass_list():
    for name in sorted(REFERENCE_TILE):
        scheme = get_scheme(name)
        assert scheme.passes, name
        assert scheme.plan is not None, name
        for pass_name in scheme.passes:
            validate_pass_name(pass_name)
        plan = scheme.pass_plan(scheme.default_config, {})
        assert [p.token for p in plan] == list(scheme.passes)


# ---------------------------------------------------------------------------
# incremental rescheduling
# ---------------------------------------------------------------------------


def test_incremental_reschedule_edits_byte_identical_fewer_passes():
    runner = PipelineRunner()
    matrix = _multi_tile_matrix(11)
    runner.reschedule(matrix, "crhcs", max_rows_per_pass=150)
    cold_total = runner.last_reschedule_stats.executed_total
    n_tiles = len(tile_matrix(matrix, DEFAULT_SERPENS, 150))
    assert n_tiles >= 4

    rng = np.random.default_rng(5)
    for _ in range(3):
        for site in rng.integers(0, matrix.nnz, 2):
            matrix.values[int(site)] += 1.0
        warm = runner.reschedule(matrix, "crhcs", max_rows_per_pass=150)
        stats = runner.last_reschedule_stats
        assert stats.executed_total < cold_total
        assert stats.skipped_total > 0
        fresh = PipelineRunner().schedule(
            matrix, "crhcs", max_rows_per_pass=150
        )
        assert schedules_identical(warm.schedule, fresh.schedule)


def test_incremental_scheduler_noop_resumes_every_cacheable_pass():
    scheme = get_scheme("pe_aware")
    config = scheme.default_config
    matrix = _multi_tile_matrix(3)
    manager = PassManager(scheme.pass_plan(config, {}), scheme="pe_aware")
    session = IncrementalScheduler(manager, config, max_rows_per_pass=150)
    first = session.schedule(matrix)
    assert "build:pe_aware" in session.last_stats.executed
    second = session.reschedule(matrix)
    assert schedules_identical(first, second)
    assert "build:pe_aware" not in session.last_stats.executed
    assert session.last_stats.skipped["build:pe_aware"] == len(first.tiles)


def test_reschedule_rejects_non_pass_schemes():
    runner = PipelineRunner()
    with pytest.raises(ConfigError, match="no pass"):
        register_scheme(
            name="tmp_monolith",
            version="1",
            default_config=DEFAULT_SERPENS,
            power_key="serpens",
        )(lambda matrix, config: None)
        try:
            runner.reschedule(_multi_tile_matrix(1), "tmp_monolith")
        finally:
            unregister("tmp_monolith")


# ---------------------------------------------------------------------------
# the per-pass artifact cache (and the cache-key bugfix)
# ---------------------------------------------------------------------------


def test_migrate_only_config_change_reuses_build_artifacts():
    """Regression: a MigratePass-only parameter change must reuse every
    cached BuildGridPass artifact instead of rebuilding from scratch."""
    store = ArtifactStore(schedule_cache=ScheduleCache())
    runner = PipelineRunner(store)
    matrix = _multi_tile_matrix(7)
    first = runner.schedule(
        matrix, "crhcs", max_rows_per_pass=150, steal_tries=8
    )
    n_tiles = len(first.schedule.tiles)
    tier = store.schedule_cache.pass_tier
    assert tier.hits == 0

    second = runner.schedule(
        matrix, "crhcs", max_rows_per_pass=150, steal_tries=4
    )
    # Different steal_tries → different whole-schedule key (no stale
    # hit), but the build prefix of the pass chain is unchanged and
    # every tile resumes from its cached build artifact.
    assert store.schedule_cache.misses == 2
    assert tier.hits >= n_tiles
    assert "build:pe_aware" not in tier.last_stats.executed
    assert tier.last_stats.skipped["build:pe_aware"] == n_tiles
    assert tier.last_stats.executed["migrate:crhcs"] == n_tiles
    assert not schedules_identical(first.schedule, second.schedule) or True


def test_schedule_fingerprint_folds_pass_signature_and_skips_private():
    scheme = get_scheme("row_split")
    config = scheme.default_config
    base = ScheduleStage.fingerprint_for(
        "m0", scheme, config, {"split_threshold": 7}
    )
    other = ScheduleStage.fingerprint_for(
        "m0", scheme, config, {"split_threshold": 9}
    )
    assert base != other
    private = ScheduleStage.fingerprint_for(
        "m0", scheme, config,
        {"split_threshold": 7, "_pass_cache": PassArtifactCache()},
    )
    assert private == base


def test_pass_cache_lru_and_capacity_knob(monkeypatch):
    cache = PassArtifactCache(capacity=0)
    assert cache.get("anything") is None
    monkeypatch.setenv("REPRO_PASS_CACHE_SIZE", "7")
    assert pass_cache_capacity() == 7
    assert PassArtifactCache().capacity == 7
    monkeypatch.setenv("REPRO_PASS_CACHE_SIZE", "not-a-number")
    telemetry.reset_warnings()
    assert pass_cache_capacity() == 128


def test_schedule_cache_clear_clears_pass_tier():
    cache = ScheduleCache()
    tier = cache.pass_tier
    tier.misses = 3
    cache.clear()
    assert tier.misses == 0


# ---------------------------------------------------------------------------
# registry pass-list validation
# ---------------------------------------------------------------------------


def test_register_scheme_rejects_unknown_pass_with_suggestion():
    with pytest.raises(ConfigError, match="did you mean 'compact'"):
        register_scheme(
            name="tmp_bad_passes",
            version="1",
            default_config=DEFAULT_SERPENS,
            power_key="serpens",
            passes=("build:pe_aware", "compactt"),
            plan=lambda config, kwargs: [],
        )(lambda matrix, config: None)
    unregister("tmp_bad_passes")


def test_register_scheme_requires_plan_with_passes():
    with pytest.raises(ConfigError, match="no plan"):
        register_scheme(
            name="tmp_planless",
            version="1",
            default_config=DEFAULT_SERPENS,
            power_key="serpens",
            passes=("compact",),
        )(lambda matrix, config: None)
    unregister("tmp_planless")


def test_resolve_passes_unknown_name_raises():
    with pytest.raises(ConfigError, match="did you mean"):
        resolve_passes(("build:pe_awre",))


def test_known_pass_names_cover_builtin_kernels():
    names = known_pass_names()
    for expected in (
        "build:pe_aware", "build:greedy", "build:row_based",
        "build:row_split", "build:crhcs_rebuild", "migrate:crhcs",
        "compact", "trim", "verify",
    ):
        assert expected in names


# ---------------------------------------------------------------------------
# telemetry
# ---------------------------------------------------------------------------


def test_schedule_pass_spans_and_summary_section():
    matrix = MINI_CORPUS[1].generate()
    scheme = get_scheme("crhcs")
    with telemetry.capture() as cap:
        scheme.scheduler(matrix, scheme.default_config)
    spans = [
        r for r in cap.records
        if r["kind"] == "span"
        and r["name"].rsplit("/", 1)[-1].startswith("schedule.pass.")
    ]
    tokens = {r["attrs"]["token"] for r in spans}
    assert tokens == {
        "build:pe_aware", "migrate:crhcs", "compact", "trim", "verify"
    }
    for record in spans:
        assert record["attrs"]["scheme"] == "crhcs"
        assert record["attrs"]["tiles"] >= 1
        assert record["attrs"]["resumed"] == 0
    section = summarize_schedule_passes(cap.records)
    assert "migrate:crhcs" in section
    assert "schedule passes" in summarize_records(cap.records)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_list_passes(self, capsys):
        assert main(["schedule", "--list-passes"]) == 0
        out = capsys.readouterr().out
        assert "build:pe_aware" in out
        assert "migrate:crhcs" in out
        assert "crhcs          build:pe_aware -> migrate:crhcs" in out

    def test_info_shows_pass_table(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "scheme pass pipelines:" in out
        assert "build:pe_aware -> migrate:crhcs -> compact" in out

    def test_reschedule_command(self, capsys):
        assert main([
            "reschedule", "reorientation_4",
            "--scheme", "crhcs", "--edits", "2", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "byte-identical to a cold schedule: yes" in out
        assert "resumed from cache" in out

    def test_reschedule_rejects_bad_edits(self, capsys):
        assert main([
            "reschedule", "reorientation_4", "--edits", "0",
        ]) == 1
