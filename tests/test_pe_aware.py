"""PE-aware (round-robin window) scheduling — the Serpens baseline."""

import numpy as np
import pytest

from repro.formats.coo import COOMatrix
from repro.matrices import generators
from repro.scheduling.pe_aware import (
    group_rows_by_pe,
    schedule_pe_aware,
    schedule_single_pe_round_robin,
)
from repro.scheduling.window import tile_matrix


def rows_fixture(counts):
    """Build a RowGroup list: row id i*stride with counts[i] elements."""
    rows = []
    base = 0
    for i, count in enumerate(counts):
        rows.append((i, np.arange(base, base + count)))
        base += count
    return rows


class TestSinglePERoundRobin:
    def test_fig2b_interleave(self):
        # Two rows of 3 elements each, distance 10, rows at positions 0, 1
        # (row ids 0 and 1 with total_pes=1): lanes 0 and 1 of one window.
        rows = [(0, np.array([0, 1, 2])), (1, np.array([3, 4, 5]))]
        cycles, elements, length = schedule_single_pe_round_robin(
            rows, distance=10, total_pes=1
        )
        assert length == 30  # 3 rotations x 10 lanes
        # Row 0 occupies lane 0 of each rotation: cycles 0, 10, 20.
        assert cycles[:3] == [0, 10, 20]
        # Row 1 occupies lane 1: cycles 1, 11, 21.
        assert cycles[3:] == [1, 11, 21]

    def test_raw_distance_by_construction(self):
        rows = rows_fixture([5, 2, 7])
        cycles, elements, _ = schedule_single_pe_round_robin(
            rows, distance=10, total_pes=1
        )
        by_row = {}
        for (row, indices) in rows:
            by_row[row] = [
                c for c, e in zip(cycles, elements) if e in set(indices)
            ]
        for row_cycles in by_row.values():
            gaps = np.diff(sorted(row_cycles))
            assert np.all(gaps >= 10)

    def test_window_length_set_by_longest_row(self):
        rows = rows_fixture([1, 9, 2])
        _, _, length = schedule_single_pe_round_robin(
            rows, distance=10, total_pes=1
        )
        assert length == 90  # 9 rotations x 10

    def test_stall_count_matches_imbalance(self):
        rows = rows_fixture([1, 9, 2])
        cycles, _, length = schedule_single_pe_round_robin(
            rows, distance=10, total_pes=1
        )
        assert length - len(cycles) == 90 - 12

    def test_multiple_windows(self):
        # 12 rows of 1 element with distance 10: two windows.
        rows = rows_fixture([1] * 12)
        cycles, _, length = schedule_single_pe_round_robin(
            rows, distance=10, total_pes=1
        )
        assert length == 20
        assert len(cycles) == 12

    def test_empty_rows_between_windows_skipped(self):
        # Rows 0 and 25 (positions 0 and 25): windows 0 and 2; window 1 is
        # all-empty and contributes no cycles.
        rows = [(0, np.array([0])), (25, np.array([1]))]
        _, _, length = schedule_single_pe_round_robin(
            rows, distance=10, total_pes=1
        )
        assert length == 20

    def test_empty_input(self):
        cycles, elements, length = schedule_single_pe_round_robin(
            [], distance=10, total_pes=1
        )
        assert cycles == [] and elements == [] and length == 0


class TestGroupRowsByPe:
    def test_eq1_grouping(self, small_serpens):
        matrix = generators.diagonal(32, seed=0)
        tile = tile_matrix(matrix, small_serpens)[0]
        groups = group_rows_by_pe(tile, small_serpens)
        # Row 5 → channel 1, PE 1 (4 channels x 4 PEs).
        rows_in = [row for row, _ in groups[1][1]]
        assert 5 in rows_in
        assert all(row % 16 == 5 for row in rows_in)

    def test_element_order_is_by_column(self, small_serpens):
        coo = COOMatrix.from_entries(
            (4, 8), [(0, 5, 1.0), (0, 2, 2.0), (0, 7, 3.0)]
        )
        tile = tile_matrix(coo, small_serpens)[0]
        groups = group_rows_by_pe(tile, small_serpens)
        row, indices = groups[0][0][0]
        assert row == 0
        assert tile.cols[indices].tolist() == [2, 5, 7]

    def test_empty_tile(self, small_serpens):
        tile = tile_matrix(COOMatrix.from_entries((4, 4), []),
                           small_serpens)[0]
        groups = group_rows_by_pe(tile, small_serpens)
        assert all(not pe for ch in groups for pe in ch)


class TestSchedulePeAware:
    def test_every_nonzero_scheduled_once(self, small_serpens, small_matrix):
        schedule = schedule_pe_aware(small_matrix, small_serpens)
        assert schedule.nnz == small_matrix.nnz
        schedule.validate()

    def test_all_elements_private(self, small_serpens, small_matrix):
        schedule = schedule_pe_aware(small_matrix, small_serpens)
        for tile in schedule.tiles:
            for grid in tile.grids:
                for _, _, element in grid.iter_elements():
                    assert element.origin_channel == grid.channel_id

    def test_lists_equalised(self, small_serpens, small_matrix):
        schedule = schedule_pe_aware(small_matrix, small_serpens)
        for tile in schedule.tiles:
            lengths = {len(g) for g in tile.grids}
            assert len(lengths) == 1

    def test_balanced_diagonal_has_low_stalls(self, small_serpens):
        # One element per row: every window rotates once, no stalls except
        # channel equalisation.
        matrix = generators.diagonal(64, seed=1)
        schedule = schedule_pe_aware(matrix, small_serpens)
        assert schedule.underutilization == pytest.approx(0.0)

    def test_imbalance_causes_stalls(self, small_serpens, skewed_matrix):
        uniform = generators.uniform_random(300, 300, 1500, seed=13)
        skewed_schedule = schedule_pe_aware(skewed_matrix, small_serpens)
        uniform_schedule = schedule_pe_aware(uniform, small_serpens)
        assert (
            skewed_schedule.underutilization
            > uniform_schedule.underutilization
        )

    def test_migrated_count_is_zero(self, small_serpens, small_matrix):
        schedule = schedule_pe_aware(small_matrix, small_serpens)
        assert schedule.migrated_count == 0
