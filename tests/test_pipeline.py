"""Pipeline architecture tests.

Three families:

* **golden differential** — ≥20 corpus matrices through the legacy
  façade-shaped flow (scheduler function → ``estimate_cycles`` →
  hand-assembled Eqs. 4–7 report, copied verbatim from the pre-pipeline
  ``StreamingAccelerator.report_from_cycles``) against
  :meth:`PipelineRunner.analyze`, asserting byte-identical
  :class:`SpMVReport` fields for every registered scheme;
* **registry** — round-trip registration, duplicate rejection, and the
  did-you-mean :class:`ConfigError` on unknown scheme names;
* **artifact store** — stage-level hit/miss accounting: a config change
  busts schedule/simulate/metrics but not load, a matrix change busts
  nothing for other matrices, a scheduler version bump busts the
  schedule stage, and a power-model change busts only metrics.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import telemetry
from repro.baselines.serpens import SerpensAccelerator
from repro.config import DEFAULT_CHASON, DEFAULT_SERPENS
from repro.core.accelerator import SpMVReport as ReExportedReport
from repro.core.chason import ChasonAccelerator
from repro.errors import ConfigError
from repro.matrices.collection import corpus_specs
from repro.matrices.named import generate_named
from repro.metrics import (
    bandwidth_efficiency,
    energy_efficiency,
    pe_underutilization_percent,
    throughput_gflops,
)
from repro.pipeline import (
    ArtifactStore,
    PipelineRunner,
    SpMVReport,
    fingerprint,
    fingerprint_config,
    fingerprint_matrix,
)
from repro.scheduling.cache import ScheduleCache
from repro.scheduling.crhcs import MigrationReport, schedule_crhcs
from repro.scheduling.pe_aware import schedule_pe_aware
from repro.scheduling.registry import (
    get_scheme,
    iter_schemes,
    register_scheme,
    registered_schemes,
    unregister,
)
from repro.sim.engine import estimate_cycles

#: The differential corpus: 20 seeded matrices, capped so the heavier
#: schemes stay fast.
CORPUS = corpus_specs(20, nnz_cap=6_000)


def legacy_report(schedule, cycles, config, name, power_watts):
    """The pre-pipeline ``report_from_cycles``, verbatim.

    Any drift between the pipeline's metrics stage and this reference is
    a reproduction-breaking change, hence exact equality below.
    """
    latency_seconds = cycles.total / config.frequency_hz
    gflops = throughput_gflops(schedule.nnz, schedule.n_cols, latency_seconds)
    bandwidth = config.streaming_bandwidth_gbps
    return SpMVReport(
        accelerator=name,
        scheme=schedule.scheme,
        n_rows=schedule.n_rows,
        n_cols=schedule.n_cols,
        nnz=schedule.nnz,
        stream_cycles=cycles.stream,
        total_cycles=cycles.total,
        latency_ms=latency_seconds * 1e3,
        throughput_gflops=gflops,
        underutilization_pct=pe_underutilization_percent(
            schedule.total_stalls, schedule.nnz
        ),
        traffic_bytes=schedule.traffic_bytes,
        bandwidth_gbps=bandwidth,
        bandwidth_efficiency=bandwidth_efficiency(gflops, bandwidth),
        power_watts=power_watts,
        energy_efficiency=energy_efficiency(gflops, power_watts),
        migrated=schedule.migrated_count,
    )


def fresh_runner() -> PipelineRunner:
    """A runner with a private store (no cross-test pollution)."""
    return PipelineRunner(
        ArtifactStore(schedule_cache=ScheduleCache())
    )


class TestGoldenDifferential:
    def test_crhcs_byte_identical_over_corpus(self):
        """Legacy ChasonAccelerator flow == pipeline, 20 corpus matrices."""
        runner = PipelineRunner()
        chason_power = ChasonAccelerator.power_watts
        for spec in CORPUS:
            matrix = spec.generate()
            schedule = schedule_crhcs(
                matrix, DEFAULT_CHASON, mode="migrate",
                report=MigrationReport(),
            )
            cycles = estimate_cycles(schedule, DEFAULT_CHASON)
            expected = legacy_report(
                schedule, cycles, DEFAULT_CHASON, "chason", chason_power
            )
            actual = runner.analyze(spec, "crhcs").report
            assert dataclasses.asdict(actual) == dataclasses.asdict(expected)

    def test_pe_aware_byte_identical_over_corpus(self):
        """Legacy SerpensAccelerator flow == pipeline, 20 corpus matrices."""
        runner = PipelineRunner()
        serpens_power = SerpensAccelerator.power_watts
        for spec in CORPUS:
            matrix = spec.generate()
            schedule = schedule_pe_aware(matrix, DEFAULT_SERPENS)
            cycles = estimate_cycles(schedule, DEFAULT_SERPENS)
            expected = legacy_report(
                schedule, cycles, DEFAULT_SERPENS, "serpens", serpens_power
            )
            actual = runner.analyze(spec, "pe_aware").report
            assert dataclasses.asdict(actual) == dataclasses.asdict(expected)

    def test_every_registered_scheme_byte_identical(self):
        """The differential holds for all registered schemes."""
        runner = PipelineRunner()
        for spec in CORPUS[:3]:
            matrix = spec.generate()
            for scheme in iter_schemes():
                kwargs = (
                    {"report": MigrationReport()} if scheme.report_kwarg
                    else {}
                )
                schedule = scheme.scheduler(
                    matrix, scheme.default_config, **kwargs
                )
                cycles = estimate_cycles(schedule, scheme.default_config)
                expected = legacy_report(
                    schedule, cycles, scheme.default_config,
                    scheme.accelerator_name, scheme.power_watts(),
                )
                actual = runner.analyze(spec, scheme.name).report
                assert dataclasses.asdict(actual) == dataclasses.asdict(
                    expected
                ), scheme.name

    def test_facades_match_pipeline_on_memory_matrix(self):
        """In-memory (content-fingerprinted) sources agree too."""
        matrix = generate_named("c52")
        assert ChasonAccelerator().analyze(matrix) == (
            PipelineRunner().analyze(matrix, "crhcs").report
        )
        assert SerpensAccelerator().analyze(matrix) == (
            PipelineRunner().analyze(matrix, "pe_aware").report
        )

    def test_functional_run_matches_analytic_report(self):
        """run() (executed datapath) and analyze() agree field-for-field."""
        matrix = CORPUS[0].generate()
        x = np.ones(matrix.n_cols, dtype=np.float32)
        runner = PipelineRunner()
        _, run_report = runner.run(matrix, x, "crhcs")
        assert run_report == runner.analyze(matrix, "crhcs").report

    def test_report_reexport_is_the_pipeline_type(self):
        assert ReExportedReport is SpMVReport


class TestRegistry:
    def test_round_trip(self):
        @register_scheme(
            name="unit_test_scheme",
            version="1",
            default_config=DEFAULT_SERPENS,
            power_key="serpens",
            description="registry round-trip probe",
        )
        def schedule_probe(matrix, config):
            return schedule_pe_aware(matrix, config)

        try:
            assert "unit_test_scheme" in registered_schemes()
            spec = get_scheme("unit_test_scheme")
            assert spec.scheduler is schedule_probe
            assert spec.version == "1"
            assert spec.accelerator_name == "unit_test_scheme"
            assert spec.default_config is DEFAULT_SERPENS
            report = (
                PipelineRunner().analyze(CORPUS[0], "unit_test_scheme").report
            )
            assert report.accelerator == "unit_test_scheme"
            assert report.scheme == "pe_aware"
        finally:
            assert unregister("unit_test_scheme") is spec
        assert "unit_test_scheme" not in registered_schemes()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):
            register_scheme(
                name="crhcs",
                version="99",
                default_config=DEFAULT_CHASON,
                power_key="chason",
            )(lambda matrix, config: None)

    def test_unknown_scheme_suggests_closest(self):
        with pytest.raises(ConfigError, match="did you mean"):
            get_scheme("chrcs")
        with pytest.raises(ConfigError, match="registered:"):
            get_scheme("definitely-not-a-scheme")

    def test_builtin_schemes_present(self):
        names = registered_schemes()
        for expected in ("crhcs", "crhcs_rebuild", "greedy_ooo",
                         "pe_aware", "row_based", "row_split"):
            assert expected in names

    def test_version_tag_changes_schedule_fingerprint(self):
        from repro.pipeline.stages import ScheduleStage

        spec = get_scheme("pe_aware")
        bumped = dataclasses.replace(spec, version=spec.version + "-next")
        digest = ScheduleStage.fingerprint_for(
            "m", spec, DEFAULT_SERPENS, {}
        )
        assert digest != ScheduleStage.fingerprint_for(
            "m", bumped, DEFAULT_SERPENS, {}
        )


class TestFingerprints:
    def test_config_fingerprint_covers_every_field(self):
        base = fingerprint_config(DEFAULT_SERPENS)
        changed = dataclasses.replace(DEFAULT_SERPENS, column_window=4096)
        assert fingerprint_config(changed) != base
        assert fingerprint_config(
            dataclasses.replace(DEFAULT_SERPENS)
        ) == base

    def test_matrix_fingerprint_tracks_content(self):
        a = CORPUS[0].generate()
        b = CORPUS[1].generate()
        assert fingerprint_matrix(a) == fingerprint_matrix(a)
        assert fingerprint_matrix(a) != fingerprint_matrix(b)

    def test_fingerprint_type_tags_distinguish_values(self):
        assert fingerprint(1) != fingerprint(1.0)
        assert fingerprint(True) != fingerprint(1)
        assert fingerprint("1") != fingerprint(1)
        assert fingerprint(["a", "b"]) != fingerprint(["ab"])


class TestArtifactStore:
    def test_repeat_analyze_hits_every_stage(self):
        runner = fresh_runner()
        first = runner.analyze(CORPUS[0], "pe_aware")
        second = runner.analyze(CORPUS[0], "pe_aware")
        store = runner.store
        for stage in ("load", "schedule", "simulate", "metrics"):
            assert store.stage_hits(stage) == 1, stage
            assert store.stage_misses(stage) == 1, stage
        assert second.report == first.report
        # Cached schedules drop the build-time migration side-channel.
        assert second.scheduled.migration is None

    def test_config_change_busts_downstream_but_not_load(self):
        runner = fresh_runner()
        store = runner.store
        runner.analyze(CORPUS[0], "pe_aware")
        changed = dataclasses.replace(DEFAULT_SERPENS, column_window=4096)
        runner.analyze(CORPUS[0], "pe_aware", changed)
        assert store.stage_hits("load") == 1
        for stage in ("schedule", "simulate", "metrics"):
            assert store.stage_misses(stage) == 2, stage
            assert store.stage_hits(stage) == 0, stage

    def test_matrix_change_does_not_bust_other_entries(self):
        runner = fresh_runner()
        store = runner.store
        runner.analyze(CORPUS[0], "pe_aware")
        runner.analyze(CORPUS[1], "pe_aware")  # all stages miss
        runner.analyze(CORPUS[0], "pe_aware")  # original still cached
        for stage in ("load", "schedule", "simulate", "metrics"):
            assert store.stage_misses(stage) == 2, stage
            assert store.stage_hits(stage) == 1, stage

    def test_power_change_busts_only_metrics(self):
        runner = fresh_runner()
        store = runner.store
        runner.analyze(CORPUS[0], "pe_aware")
        runner.analyze(CORPUS[0], "pe_aware", power_watts=123.0)
        assert store.stage_hits("load") == 1
        assert store.stage_hits("schedule") == 1
        assert store.stage_hits("simulate") == 1
        assert store.stage_misses("metrics") == 2
        assert store.stage_hits("metrics") == 0

    def test_version_bump_busts_schedule_stage(self):
        def schedule_probe(matrix, config):
            return schedule_pe_aware(matrix, config)

        runner = fresh_runner()
        store = runner.store
        register_scheme(
            name="unit_test_versioned", version="1",
            default_config=DEFAULT_SERPENS, power_key="serpens",
        )(schedule_probe)
        try:
            runner.analyze(CORPUS[0], "unit_test_versioned")
            runner.analyze(CORPUS[0], "unit_test_versioned")
            assert store.stage_hits("schedule") == 1
        finally:
            unregister("unit_test_versioned")
        register_scheme(
            name="unit_test_versioned", version="2",
            default_config=DEFAULT_SERPENS, power_key="serpens",
        )(schedule_probe)
        try:
            runner.analyze(CORPUS[0], "unit_test_versioned")
            assert store.stage_misses("schedule") == 2
            assert store.stage_hits("schedule") == 1
        finally:
            unregister("unit_test_versioned")

    def test_schedule_cache_key_includes_version(self):
        key_v1 = ScheduleCache.key("spec", DEFAULT_SERPENS, "pe_aware", "1")
        key_v2 = ScheduleCache.key("spec", DEFAULT_SERPENS, "pe_aware", "2")
        assert key_v1 != key_v2

    def test_capacity_zero_disables_generic_tier(self):
        runner = PipelineRunner(
            ArtifactStore(capacity=0, schedule_cache=ScheduleCache())
        )
        runner.analyze(CORPUS[0], "pe_aware")
        runner.analyze(CORPUS[0], "pe_aware")
        # Schedules still memoise through the ScheduleCache tier; the
        # generic stages rebuild every time.
        assert runner.store.stage_hits("schedule") == 1
        assert runner.store.stage_hits("simulate") == 0
        assert runner.store.stage_misses("simulate") == 2


class TestTelemetrySpans:
    def test_analyze_emits_pipeline_stage_spans(self):
        with telemetry.capture() as tel:
            PipelineRunner().analyze(CORPUS[0], "pe_aware")
        spans = {r["name"] for r in tel.records if r["kind"] == "span"}
        for expected in ("pipeline.load", "pipeline.schedule",
                         "pipeline.simulate", "pipeline.metrics"):
            assert expected in spans

    def test_store_emits_cache_counters(self):
        with telemetry.capture() as tel:
            runner = fresh_runner()
            runner.analyze(CORPUS[0], "pe_aware")
            runner.analyze(CORPUS[0], "pe_aware")
        names = {r["name"] for r in tel.records if r["kind"] == "counter"}
        assert "pipeline.cache.hits" in names
        assert "pipeline.cache.misses" in names


class TestMigrationSideChannel:
    def test_uncached_analyze_populates_last_migration(self):
        matrix = generate_named("c52")
        chason = ChasonAccelerator()
        chason.analyze(matrix)
        assert chason.last_migration is not None
        assert chason.last_migration.migrated > 0
