"""Power models, resource model, and metric definitions."""

import pytest

from repro.config import ChasonConfig, SerpensConfig
from repro.errors import CapacityError, ConfigError
from repro.metrics import (
    bandwidth_efficiency,
    energy_efficiency,
    geometric_mean,
    pe_underutilization_percent,
    speedup,
    throughput_gflops,
)
from repro.power.devices import DEVICE_POWER, measured_power
from repro.power.fpga import CHASON_POWER_BREAKDOWN, chason_power_breakdown
from repro.resources.model import (
    ALVEO_U55C,
    chason_resources,
    resources_for,
    serpens_resources,
    uram_count,
)


class TestFpgaPower:
    def test_published_total(self):
        # Fig. 10: 48.715 W estimated total.
        assert CHASON_POWER_BREAKDOWN.total == pytest.approx(48.715,
                                                             abs=0.15)

    def test_hbm_dominates(self):
        fractions = CHASON_POWER_BREAKDOWN.fractions()
        assert fractions["hbm"] == max(fractions.values())
        assert fractions["hbm"] == pytest.approx(0.39, abs=0.03)

    def test_logic_is_eight_percent(self):
        assert CHASON_POWER_BREAKDOWN.fractions()["logic"] == pytest.approx(
            0.08, abs=0.03
        )

    def test_default_config_returns_published(self):
        assert chason_power_breakdown().total == pytest.approx(
            CHASON_POWER_BREAKDOWN.total
        )

    def test_scaling_with_channels(self):
        smaller = chason_power_breakdown(
            ChasonConfig(sparse_channels=8, migration_span=1)
        )
        assert smaller.hbm < CHASON_POWER_BREAKDOWN.hbm
        assert smaller.static == CHASON_POWER_BREAKDOWN.static

    def test_requires_chason_config(self):
        with pytest.raises(ConfigError):
            chason_power_breakdown(SerpensConfig())

    def test_dynamic_power(self):
        assert CHASON_POWER_BREAKDOWN.dynamic == pytest.approx(
            CHASON_POWER_BREAKDOWN.total - 12.845
        )


class TestDevicePower:
    def test_published_values(self):
        assert measured_power("chason") == 39.0
        assert measured_power("serpens") == 36.0
        assert measured_power("rtx4090") == 70.0
        assert measured_power("rtxa6000") == 65.0
        assert measured_power("i9") == 132.0

    def test_unknown_device(self):
        with pytest.raises(ConfigError):
            measured_power("tpu")

    def test_all_devices_have_measurement_source(self):
        for device in DEVICE_POWER.values():
            assert device.measurement


class TestResources:
    def test_table1_serpens(self):
        report = serpens_resources()
        assert report.luts == pytest.approx(219_000, rel=0.01)
        assert report.ffs == 252_000
        assert report.dsps == 798
        assert report.bram18k == 1024
        assert report.urams == 384

    def test_table1_chason(self):
        report = chason_resources()
        assert report.luts == pytest.approx(346_000, rel=0.01)
        assert report.ffs == 418_000
        assert report.dsps == 1254
        assert report.bram18k == 1024
        assert report.urams == 512

    def test_utilization_percentages(self):
        util = chason_resources().utilization()
        assert util["URAM"] == pytest.approx(0.533, abs=0.01)
        assert util["LUT"] == pytest.approx(0.26, abs=0.02)

    def test_ideal_scug_exceeds_device(self):
        # §4.5: ScUG of 8 needs 1024 URAMs > 960 available.
        ideal = chason_resources(ChasonConfig(scug_size=8))
        assert ideal.urams == 1024
        with pytest.raises(CapacityError):
            ideal.check_fits()

    def test_minimum_scug_floor(self):
        assert uram_count(16, 8, 2) == 256
        with pytest.raises(ConfigError):
            uram_count(16, 8, 1)

    def test_deployed_design_fits(self):
        chason_resources().check_fits()
        serpens_resources().check_fits()

    def test_dispatch(self):
        assert resources_for(ChasonConfig()).design == "chason"
        assert resources_for(SerpensConfig()).design == "serpens"
        with pytest.raises(ConfigError):
            resources_for(object())


class TestMetrics:
    def test_eq4(self):
        assert pe_underutilization_percent(30, 70) == pytest.approx(30.0)
        assert pe_underutilization_percent(0, 0) == 0.0
        with pytest.raises(ConfigError):
            pe_underutilization_percent(-1, 5)

    def test_eq5(self):
        # 2*(nnz+k)/latency_ns.
        assert throughput_gflops(1000, 100, 1e-6) == pytest.approx(2.2)
        with pytest.raises(ConfigError):
            throughput_gflops(10, 10, 0.0)

    def test_eq6(self):
        assert energy_efficiency(10.0, 40.0) == pytest.approx(0.25)
        with pytest.raises(ConfigError):
            energy_efficiency(1.0, 0.0)

    def test_eq7(self):
        assert bandwidth_efficiency(23.0, 230.0) == pytest.approx(0.1)

    def test_speedup(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)
        with pytest.raises(ConfigError):
            speedup(0.0, 1.0)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)
        with pytest.raises(ConfigError):
            geometric_mean([])
        with pytest.raises(ConfigError):
            geometric_mean([1.0, -1.0])


class TestEnergyAccounting:
    def _run(self, latency=1e-4, traffic=10_000_000, macs=500_000):
        from repro.power.energy import energy_for_run

        return energy_for_run(latency, traffic, macs)

    def test_total_is_sum_of_parts(self):
        report = self._run()
        assert report.total_j == pytest.approx(
            report.static_j + report.hbm_j + report.compute_j
            + report.onchip_memory_j
        )
        assert sum(report.fractions().values()) == pytest.approx(1.0)

    def test_static_floor_always_burns(self):
        from repro.power.energy import energy_for_run

        idle = energy_for_run(1e-4, 0, 0)
        assert idle.hbm_j == 0.0
        assert idle.compute_j == 0.0
        assert idle.static_j > 0.0

    def test_hbm_energy_scales_with_traffic(self):
        light = self._run(traffic=1_000_000)
        heavy = self._run(traffic=10_000_000)
        assert heavy.hbm_j == pytest.approx(10 * light.hbm_j, rel=1e-6)

    def test_utilisation_capped_at_peak(self):
        from repro.power.energy import energy_for_run

        saturated = energy_for_run(1e-6, 10**12, 10**12)
        assert saturated.hbm_j <= 18.95 * 1e-6 * 1.0001

    def test_transfer_reduction_cuts_energy(self):
        # The §6.2.2 energy argument: same MACs, 7x less traffic.
        serpens_like = self._run(traffic=70_000_000, latency=7e-4)
        chason_like = self._run(traffic=10_000_000, latency=1e-4)
        assert chason_like.total_j < serpens_like.total_j

    def test_energy_per_nonzero(self):
        from repro.power.energy import energy_per_nonzero_nj

        report = self._run()
        per_nnz = energy_per_nonzero_nj(report, 500_000)
        assert per_nnz > 0
        with pytest.raises(ConfigError):
            energy_per_nonzero_nj(report, 0)

    def test_validation(self):
        from repro.power.energy import energy_for_run

        with pytest.raises(ConfigError):
            energy_for_run(0.0, 1, 1)
        with pytest.raises(ConfigError):
            energy_for_run(1e-4, -1, 1)
