"""Data-precision configurations (§5.5)."""

import pytest

from repro.config import ChasonConfig, SerpensConfig
from repro.errors import ConfigError
from repro.matrices import generators
from repro.precision import (
    PRECISIONS,
    Precision,
    parallelism_ratio,
    precision,
    with_precision,
)
from repro.scheduling import schedule_crhcs


class TestPrecisionTable:
    def test_fp32_is_the_deployed_point(self):
        fp32 = precision("fp32")
        assert fp32.element_bits == 64
        assert fp32.elements_per_word == 8
        assert fp32.pes_per_peg == 8

    def test_fp64_reduces_parallelism_to_five(self):
        # §5.5: 64-bit values + 32-bit metadata → 5 elements per beat.
        fp64 = precision("fp64")
        assert fp64.element_bits == 96
        assert fp64.elements_per_word == 5
        assert fp64.pes_per_peg == 5

    def test_fp16_packs_more(self):
        assert precision("fp16").elements_per_word == 10

    def test_unknown_precision(self):
        with pytest.raises(ConfigError):
            precision("bf8")

    def test_parallelism_ratio(self):
        assert parallelism_ratio("fp32", "fp64") == pytest.approx(8 / 5)

    def test_element_wider_than_beat_rejected(self):
        with pytest.raises(ConfigError):
            Precision(name="huge", value_bits=512, metadata_bits=32)

    def test_all_presets_valid(self):
        for name, spec in PRECISIONS.items():
            assert spec.name == name
            assert spec.elements_per_word >= 1


class TestWithPrecision:
    def test_fp64_chason_config(self):
        config = with_precision(ChasonConfig(), "fp64")
        assert config.pes_per_channel == 5
        assert config.scug_size == 4  # min(deployed 4, 5 PEs)
        assert isinstance(config, ChasonConfig)

    def test_fp64_scug_follows_peg_width(self):
        config = with_precision(ChasonConfig(scug_size=8), "fp64")
        # §5.5: "required URAM_sh per ScUG reduces to 5".
        assert config.scug_size == 5

    def test_fp16_capped_at_physical_pes(self):
        config = with_precision(SerpensConfig(), "fp16")
        assert config.pes_per_channel == 8

    def test_fp32_roundtrip_identity(self):
        base = ChasonConfig()
        assert with_precision(base, "fp32").pes_per_channel == 8

    def test_fp64_schedule_still_correct(self):
        import numpy as np

        from repro.sim import execute_schedule

        config = with_precision(
            ChasonConfig(column_window=128, row_window=512), "fp64"
        )
        matrix = generators.uniform_random(200, 120, 900, seed=31)
        schedule = schedule_crhcs(matrix, config)
        schedule.validate()
        assert schedule.nnz == matrix.nnz
        x = np.random.default_rng(31).normal(size=120).astype(np.float32)
        assert execute_schedule(schedule, x).verify(matrix.matvec(x))

    def test_fp64_needs_more_cycles(self):
        matrix = generators.uniform_random(600, 600, 6000, seed=32)
        fp32 = schedule_crhcs(matrix, ChasonConfig())
        fp64 = schedule_crhcs(matrix, with_precision(ChasonConfig(),
                                                     "fp64"))
        # 5 PEs per PEG instead of 8: fewer slots per cycle.
        assert fp64.stream_cycles > fp32.stream_cycles
