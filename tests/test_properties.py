"""Property-based tests (hypothesis) on the core invariants.

These are the invariants the whole reproduction rests on:

* packed elements survive a pack/unpack round trip bit-exactly;
* every scheduler emits each non-zero exactly once, in a RAW-safe slot,
  and the executed SpMV equals the float64 reference;
* CrHCS never schedules worse than PE-aware (same cycles or fewer) and
  Eq. 4 is consistent with the slot grids.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import ChasonConfig, HBMConfig, SerpensConfig
from repro.formats.coo import COOMatrix
from repro.formats.element import PackedElement, pack_element, unpack_element
from repro.scheduling.crhcs import schedule_crhcs
from repro.scheduling.greedy import schedule_greedy_ooo
from repro.scheduling.pe_aware import schedule_pe_aware
from repro.scheduling.row_based import schedule_row_based
from repro.sim.engine import execute_schedule

SMALL_HBM = HBMConfig(total_channels=8)
SERPENS = SerpensConfig(
    sparse_channels=4, pes_per_channel=4, accumulator_latency=4,
    column_window=32, row_window=128, hbm=SMALL_HBM,
)
CHASON = ChasonConfig(
    sparse_channels=4, pes_per_channel=4, accumulator_latency=4,
    column_window=32, row_window=128, scug_size=4, hbm=SMALL_HBM,
)

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=30,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@st.composite
def packed_elements(draw):
    return PackedElement(
        value=draw(
            st.floats(
                allow_nan=False,
                allow_infinity=False,
                width=32,
            )
        ),
        row=draw(st.integers(0, 2**15 - 1)),
        col=draw(st.integers(0, 2**13 - 1)),
        pvt=draw(st.booleans()),
        pe_src=draw(st.integers(0, 7)),
    )


@st.composite
def sparse_matrices(draw, max_dim=96, max_nnz=220):
    n_rows = draw(st.integers(1, max_dim))
    n_cols = draw(st.integers(1, max_dim))
    capacity = n_rows * n_cols
    nnz = draw(st.integers(0, min(max_nnz, capacity)))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    flat = rng.choice(capacity, size=nnz, replace=False)
    values = rng.normal(size=nnz).astype(np.float32)
    values[np.abs(values) < 1e-3] = 1.0
    return COOMatrix(
        (n_rows, n_cols), flat // n_cols, flat % n_cols, values
    )


class TestPackedElementProperties:
    @given(packed_elements())
    def test_roundtrip_exact(self, element):
        decoded = unpack_element(pack_element(element))
        assert decoded.row == element.row
        assert decoded.col == element.col
        assert decoded.pvt == element.pvt
        assert decoded.pe_src == element.pe_src
        expected = np.float32(element.value)
        if np.isnan(expected):  # pragma: no cover - filtered by strategy
            assert np.isnan(decoded.value)
        else:
            assert np.float32(decoded.value) == expected

    @given(packed_elements())
    def test_word_fits_64_bits(self, element):
        assert 0 <= pack_element(element) < 2**64


class TestSchedulerProperties:
    @given(sparse_matrices())
    def test_pe_aware_completeness_and_raw(self, matrix):
        schedule = schedule_pe_aware(matrix, SERPENS)
        assert schedule.nnz == matrix.nnz
        schedule.validate()

    @given(sparse_matrices())
    def test_crhcs_completeness_and_raw(self, matrix):
        schedule = schedule_crhcs(matrix, CHASON)
        assert schedule.nnz == matrix.nnz
        schedule.validate()

    @given(sparse_matrices())
    def test_crhcs_never_longer_than_pe_aware(self, matrix):
        crhcs = schedule_crhcs(matrix, CHASON)
        pe_aware = schedule_pe_aware(matrix, SERPENS)
        assert crhcs.stream_cycles <= pe_aware.stream_cycles

    @given(sparse_matrices())
    def test_eq4_consistent_with_grids(self, matrix):
        schedule = schedule_crhcs(matrix, CHASON)
        for tile in schedule.tiles:
            slots = tile.stream_cycles * 4 * 4
            assert tile.total_stalls == slots - tile.nnz

    @given(sparse_matrices(max_dim=64, max_nnz=120))
    def test_row_based_and_greedy_complete(self, matrix):
        for scheduler in (schedule_row_based, schedule_greedy_ooo):
            schedule = scheduler(matrix, SERPENS)
            assert schedule.nnz == matrix.nnz
            schedule.validate()

    @given(sparse_matrices(max_dim=64, max_nnz=120))
    def test_values_preserved_through_scheduling(self, matrix):
        schedule = schedule_crhcs(matrix, CHASON)
        total = 0.0
        for tile in schedule.tiles:
            for grid in tile.grids:
                for _, _, element in grid.iter_elements():
                    total += element.value
        assert total == pytest.approx(
            float(np.sum(matrix.values, dtype=np.float64)), rel=1e-4,
            abs=1e-4,
        )


class TestFunctionalProperties:
    @given(sparse_matrices(max_dim=80, max_nnz=160),
           st.integers(0, 2**31 - 1))
    def test_crhcs_execution_matches_reference(self, matrix, x_seed):
        rng = np.random.default_rng(x_seed)
        x = rng.normal(size=matrix.n_cols).astype(np.float32)
        schedule = schedule_crhcs(matrix, CHASON)
        execution = execute_schedule(schedule, x)
        assert execution.verify(matrix.matvec(x))

    @given(sparse_matrices(max_dim=80, max_nnz=160))
    def test_serpens_execution_matches_reference(self, matrix):
        x = np.linspace(-1.0, 1.0, matrix.n_cols).astype(np.float32)
        schedule = schedule_pe_aware(matrix, SERPENS)
        execution = execute_schedule(schedule, x)
        assert execution.verify(matrix.matvec(x))
