"""Property-based tests for the extension modules."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import ChasonConfig, HBMConfig
from repro.formats.coo import COOMatrix
from repro.scheduling.crhcs import schedule_crhcs
from repro.scheduling.reorder import balancing_permutation
from repro.scheduling.serialize import (
    deserialize_schedule,
    serialize_schedule,
)

CHASON = ChasonConfig(
    sparse_channels=4, pes_per_channel=4, accumulator_latency=4,
    column_window=32, row_window=128, scug_size=4,
    hbm=HBMConfig(total_channels=8),
)

settings.register_profile(
    "repro-ext",
    deadline=None,
    max_examples=30,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro-ext")


@st.composite
def sparse_matrices(draw, max_dim=96, max_nnz=180):
    n_rows = draw(st.integers(1, max_dim))
    n_cols = draw(st.integers(1, max_dim))
    capacity = n_rows * n_cols
    nnz = draw(st.integers(0, min(max_nnz, capacity)))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    flat = rng.choice(capacity, size=nnz, replace=False)
    values = rng.normal(size=nnz).astype(np.float32)
    values[np.abs(values) < 1e-3] = 1.0
    return COOMatrix(
        (n_rows, n_cols), flat // n_cols, flat % n_cols, values
    )


class TestSerializeProperties:
    @given(sparse_matrices())
    def test_roundtrip_preserves_all_counters(self, matrix):
        schedule = schedule_crhcs(matrix, CHASON)
        loaded = deserialize_schedule(
            serialize_schedule(schedule), CHASON
        )
        assert loaded.nnz == schedule.nnz
        assert loaded.stream_cycles == schedule.stream_cycles
        assert loaded.total_stalls == schedule.total_stalls
        assert loaded.migrated_count == schedule.migrated_count
        loaded.validate()

    @given(sparse_matrices(max_dim=48, max_nnz=100))
    def test_roundtrip_preserves_slot_positions(self, matrix):
        schedule = schedule_crhcs(matrix, CHASON)
        loaded = deserialize_schedule(
            serialize_schedule(schedule), CHASON
        )
        for original, reloaded in zip(schedule.tiles, loaded.tiles):
            for grid_a, grid_b in zip(original.grids, reloaded.grids):
                assert set(grid_a.occupied) == set(grid_b.occupied)
                for key, element in grid_a.occupied.items():
                    other = grid_b.occupied[key]
                    assert other.row == element.row
                    assert other.col == element.col
                    assert other.origin_channel == element.origin_channel
                    assert other.origin_pe == element.origin_pe


class TestReorderProperties:
    @given(sparse_matrices(max_dim=80, max_nnz=160),
           st.integers(0, 2**31 - 1))
    def test_permuted_spmv_equals_original(self, matrix, seed):
        permutation = balancing_permutation(matrix, CHASON)
        permuted = permutation.apply(matrix)
        x = np.random.default_rng(seed).normal(size=matrix.n_cols)
        np.testing.assert_allclose(
            permutation.restore_vector(permuted.matvec(x)),
            matrix.matvec(x),
            rtol=1e-5,
            atol=1e-8,
        )

    @given(sparse_matrices(max_dim=80, max_nnz=160))
    def test_permutation_is_bijective(self, matrix):
        permutation = balancing_permutation(matrix, CHASON)
        np.testing.assert_array_equal(
            np.sort(permutation.forward), np.arange(matrix.n_rows)
        )
        np.testing.assert_array_equal(
            permutation.forward[permutation.inverse],
            np.arange(matrix.n_rows),
        )

    @given(sparse_matrices(max_dim=80, max_nnz=160))
    def test_nnz_preserved(self, matrix):
        permutation = balancing_permutation(matrix, CHASON)
        assert permutation.apply(matrix).nnz == matrix.nnz


class TestSchedulePropertiesUnderMigrationSpan:
    @given(sparse_matrices(max_dim=64, max_nnz=120),
           st.integers(0, 3))
    def test_any_span_schedules_everything(self, matrix, span):
        schedule = schedule_crhcs(matrix, CHASON, migration_span=span)
        assert schedule.nnz == matrix.nnz
        schedule.validate()

    @given(sparse_matrices(max_dim=64, max_nnz=120))
    def test_underutilization_bounds(self, matrix):
        schedule = schedule_crhcs(matrix, CHASON)
        assert 0.0 <= schedule.underutilization < 1.0 or (
            matrix.nnz == 0 and schedule.underutilization == 0.0
        )
