"""RAW tracker and matrix tiling."""

import numpy as np
import pytest

from repro.errors import RawHazardError
from repro.matrices import generators
from repro.scheduling.raw_tracker import RawTracker
from repro.scheduling.window import tile_matrix


class TestRawTracker:
    def test_initially_eligible(self):
        tracker = RawTracker(distance=10)
        assert tracker.eligible(0, 42, 0)
        assert tracker.earliest(0, 42) == 0

    def test_commit_blocks_for_distance(self):
        tracker = RawTracker(distance=10)
        tracker.commit(0, 42, 5)
        assert not tracker.eligible(0, 42, 14)
        assert tracker.eligible(0, 42, 15)

    def test_commit_violation_raises(self):
        tracker = RawTracker(distance=4)
        tracker.commit(1, 7, 0)
        with pytest.raises(RawHazardError):
            tracker.commit(1, 7, 3)

    def test_pes_independent(self):
        tracker = RawTracker(distance=4)
        tracker.commit(0, 7, 0)
        assert tracker.eligible(1, 7, 0)

    def test_rows_independent(self):
        tracker = RawTracker(distance=4)
        tracker.commit(0, 7, 0)
        assert tracker.eligible(0, 8, 1)

    def test_rejects_bad_distance(self):
        with pytest.raises(RawHazardError):
            RawTracker(distance=0)

    def test_len_counts_keys(self):
        tracker = RawTracker(distance=2)
        tracker.commit(0, 1, 0)
        tracker.commit(1, 1, 0)
        assert len(tracker) == 2


class TestTiling:
    def test_single_tile_small_matrix(self, small_serpens):
        matrix = generators.uniform_random(100, 60, 300, seed=1)
        tiles = tile_matrix(matrix, small_serpens)
        # 100 rows fit one 256-row window; 60 cols fit one 64-col window.
        assert len(tiles) == 1
        assert tiles[0].nnz == 300

    def test_column_windows(self, small_serpens):
        matrix = generators.uniform_random(100, 200, 600, seed=2)
        tiles = tile_matrix(matrix, small_serpens)
        assert len(tiles) == 4  # ceil(200/64)
        assert sum(t.nnz for t in tiles) == 600
        assert sorted({t.col_base for t in tiles}) == [0, 64, 128, 192]

    def test_row_windows(self, small_serpens):
        matrix = generators.uniform_random(600, 60, 900, seed=3)
        tiles = tile_matrix(matrix, small_serpens)
        assert sorted({t.row_base for t in tiles}) == [0, 256, 512]

    def test_local_coordinates(self, small_serpens):
        matrix = generators.uniform_random(600, 200, 2000, seed=4)
        for tile in tile_matrix(matrix, small_serpens):
            assert tile.rows.size == tile.nnz
            if tile.nnz:
                assert tile.rows.max() < tile.n_rows
                assert tile.cols.max() < tile.n_cols
                assert tile.rows.min() >= 0

    def test_tiles_reassemble_matrix(self, small_serpens):
        matrix = generators.uniform_random(300, 150, 1500, seed=5)
        dense = matrix.to_dense()
        rebuilt = np.zeros_like(dense)
        for tile in tile_matrix(matrix, small_serpens):
            rebuilt[
                tile.row_base + tile.rows, tile.col_base + tile.cols
            ] += tile.values
        np.testing.assert_allclose(rebuilt, dense, rtol=1e-6)

    def test_empty_tiles_skipped(self, small_serpens):
        # Matrix with content only in the top-left corner.
        matrix = generators.uniform_random(50, 50, 100, seed=6)
        from repro.formats.coo import COOMatrix

        padded = COOMatrix((1000, 1000), matrix.rows, matrix.cols,
                           matrix.values)
        tiles = tile_matrix(padded, small_serpens)
        assert all(t.nnz > 0 for t in tiles)

    def test_empty_matrix_gets_one_tile(self, small_serpens):
        from repro.formats.coo import COOMatrix

        tiles = tile_matrix(
            COOMatrix.from_entries((10, 10), []), small_serpens
        )
        assert len(tiles) == 1
        assert tiles[0].nnz == 0

    def test_max_rows_per_pass_override(self, small_serpens):
        matrix = generators.uniform_random(600, 60, 900, seed=3)
        tiles = tile_matrix(matrix, small_serpens, max_rows_per_pass=100)
        assert sorted({t.row_base for t in tiles}) == [
            0, 100, 200, 300, 400, 500
        ]
