"""Row-based and greedy-OoO scheduling schemes."""

import numpy as np
import pytest

from repro.formats.coo import COOMatrix
from repro.matrices import generators
from repro.scheduling.greedy import (
    schedule_greedy_ooo,
    schedule_single_pe_greedy,
)
from repro.scheduling.pe_aware import schedule_pe_aware
from repro.scheduling.row_based import schedule_row_based


class TestRowBased:
    def test_all_elements_scheduled(self, small_serpens, small_matrix):
        schedule = schedule_row_based(small_matrix, small_serpens)
        assert schedule.nnz == small_matrix.nnz
        schedule.validate()

    def test_fig2a_serialization(self, small_serpens):
        # A single row of 3 non-zeros on one PE: issues at 0, D, 2D.
        matrix = COOMatrix.from_entries(
            (16, 16), [(0, 1, 1.0), (0, 5, 2.0), (0, 9, 3.0)]
        )
        schedule = schedule_row_based(matrix, small_serpens)
        grid = schedule.tiles[0].grids[0]
        cycles = sorted(c for c, _, _ in grid.iter_elements())
        distance = small_serpens.accumulator_latency
        assert cycles == [0, distance, 2 * distance]

    def test_next_row_starts_next_cycle(self, small_serpens):
        # Row 0 (one nz) then row 16 (one nz) on PE0: cycles 0, 1.
        matrix = COOMatrix.from_entries(
            (32, 16), [(0, 1, 1.0), (16, 5, 2.0)]
        )
        schedule = schedule_row_based(matrix, small_serpens)
        grid = schedule.tiles[0].grids[0]
        cycles = sorted(c for c, _, _ in grid.iter_elements())
        assert cycles == [0, 1]

    def test_worse_than_pe_aware_on_multirow(self, small_serpens):
        matrix = generators.uniform_random(64, 64, 512, seed=8)
        row_based = schedule_row_based(matrix, small_serpens)
        pe_aware = schedule_pe_aware(matrix, small_serpens)
        assert row_based.stream_cycles >= pe_aware.stream_cycles


class TestGreedySinglePe:
    def test_respects_raw_distance(self):
        rows = [(0, np.arange(6)), (1, np.arange(6, 9))]
        cycles, elements, _ = schedule_single_pe_greedy(rows, distance=4)
        issue = {}
        for cycle, element in zip(cycles, elements):
            row = 0 if element < 6 else 1
            issue.setdefault(row, []).append(cycle)
        for row_cycles in issue.values():
            assert np.all(np.diff(sorted(row_cycles)) >= 4)

    def test_longest_remaining_first(self):
        rows = [(0, np.arange(1)), (1, np.arange(1, 6))]
        cycles, elements, _ = schedule_single_pe_greedy(rows, distance=4)
        # The 5-element row must issue first.
        assert elements[0] == 1

    def test_lower_bound_length(self):
        # 3 independent rows of 1: 3 cycles, no stalls.
        rows = [(i, np.array([i])) for i in range(3)]
        cycles, _, length = schedule_single_pe_greedy(rows, distance=10)
        assert length == 3
        assert cycles == [0, 1, 2]

    def test_single_chain_length(self):
        rows = [(0, np.arange(4))]
        _, _, length = schedule_single_pe_greedy(rows, distance=10)
        assert length == 31  # 3 gaps of 10 + final issue

    def test_empty(self):
        assert schedule_single_pe_greedy([], distance=4) == ([], [], 0)


class TestGreedyScheme:
    def test_no_worse_than_pe_aware(self, small_serpens, skewed_matrix):
        greedy = schedule_greedy_ooo(skewed_matrix, small_serpens)
        pe_aware = schedule_pe_aware(skewed_matrix, small_serpens)
        greedy.validate()
        assert greedy.stream_cycles <= pe_aware.stream_cycles

    def test_scheme_name(self, small_serpens, tiny_matrix):
        assert (
            schedule_greedy_ooo(tiny_matrix, small_serpens).scheme
            == "greedy_ooo"
        )
