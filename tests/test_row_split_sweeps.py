"""Row-splitting scheduler and design-space sweep utilities."""

import numpy as np
import pytest

from repro.analysis.sweeps import (
    scaling_efficiency,
    sweep_channels,
    sweep_configs,
    sweep_migration_span,
)
from repro.config import ChasonConfig
from repro.errors import ConfigError, SchedulingError
from repro.formats.coo import COOMatrix
from repro.matrices import generators
from repro.scheduling import schedule_crhcs, schedule_greedy_ooo
from repro.scheduling.row_split import schedule_row_split


def hub_matrix(hub_nnz=60, n=32, cols=64):
    """One hub row plus light background rows."""
    entries = [(1, c, 1.0) for c in range(hub_nnz)]
    entries += [(r, 0, 1.0) for r in range(2, n, 3)]
    return COOMatrix.from_entries((n, cols), entries)


class TestRowSplit:
    def test_completeness(self, small_serpens, skewed_matrix):
        schedule = schedule_row_split(skewed_matrix, small_serpens)
        assert schedule.nnz == skewed_matrix.nnz
        assert schedule.scheme == "row_split"

    def test_raw_spacing_per_pe(self, small_serpens, skewed_matrix):
        schedule = schedule_row_split(skewed_matrix, small_serpens)
        distance = small_serpens.accumulator_latency
        for tile in schedule.tiles:
            for grid in tile.grids:
                last = {}
                for cycle, pe, element in grid.iter_elements():
                    key = (pe, element.row)
                    if key in last:
                        assert cycle - last[key] >= distance
                    last[key] = cycle

    def test_hub_row_spread_across_home_channel(self, small_serpens):
        matrix = hub_matrix(hub_nnz=60)
        schedule = schedule_row_split(matrix, small_serpens,
                                      split_threshold=8)
        # Row 1's home channel is 0 (4ch x 4pe: global pe 1).
        grid = schedule.tiles[0].grids[0]
        pes_used = {
            pe for _, pe, e in grid.iter_elements() if e.row == 1
        }
        assert len(pes_used) == small_serpens.pes_per_channel

    def test_breaks_single_row_chain(self, small_serpens):
        matrix = hub_matrix(hub_nnz=60)
        split = schedule_row_split(matrix, small_serpens,
                                   split_threshold=8)
        greedy = schedule_greedy_ooo(matrix, small_serpens)
        assert split.stream_cycles < greedy.stream_cycles

    def test_cannot_fix_channel_starvation(self, small_serpens,
                                           small_chason):
        # All work on one channel's rows: splitting spreads it over that
        # channel's 4 PEs, but migration spreads it over 8 — CrHCS still
        # wins on cycles.
        entries = [(1, c, 1.0) for c in range(64)]
        entries += [(5, c, 1.0) for c in range(64)]
        matrix = COOMatrix.from_entries((16, 64), entries)
        split = schedule_row_split(matrix, small_serpens,
                                   split_threshold=8)
        crhcs = schedule_crhcs(matrix, small_chason)
        # Migration matches or beats splitting here (both spread the two
        # hub rows; migration additionally has 8 PEs to spread over).
        assert crhcs.stream_cycles <= split.stream_cycles * 1.05

    def test_short_rows_not_split(self, small_serpens):
        matrix = generators.diagonal(32, seed=1)
        schedule = schedule_row_split(matrix, small_serpens)
        for tile in schedule.tiles:
            for grid in tile.grids:
                for _, pe, element in grid.iter_elements():
                    # Eq. 1 lane preserved for unsplit rows.
                    assert element.origin_pe == pe
                    assert (
                        element.row % small_serpens.total_pes
                        == grid.channel_id * small_serpens.pes_per_channel
                        + pe
                    )

    def test_invalid_threshold(self, small_serpens, tiny_matrix):
        with pytest.raises(SchedulingError):
            schedule_row_split(tiny_matrix, small_serpens,
                               split_threshold=-3)

    def test_values_preserved(self, small_serpens, skewed_matrix):
        schedule = schedule_row_split(skewed_matrix, small_serpens)
        total = sum(
            element.value
            for tile in schedule.tiles
            for grid in tile.grids
            for _, _, element in grid.iter_elements()
        )
        assert total == pytest.approx(
            float(np.sum(skewed_matrix.values, dtype=np.float64)),
            rel=1e-4, abs=1e-4,
        )


class TestSweeps:
    def test_sweep_channels_labels_and_monotonicity(self):
        matrix = generators.uniform_random(1500, 1500, 15000, seed=31)
        points = sweep_channels(matrix, channel_counts=(4, 8, 16))
        assert [p.label for p in points] == ["4ch", "8ch", "16ch"]
        cycles = [p.cycles for p in points]
        assert cycles == sorted(cycles, reverse=True)

    def test_sweep_span_uram_accounting(self):
        matrix = generators.chung_lu_graph(600, 6000, alpha=2.1, seed=32)
        points = sweep_migration_span(matrix, spans=(1, 2))
        assert points[1].urams == 2 * points[0].urams

    def test_scaling_efficiency_baseline_is_one(self):
        matrix = generators.uniform_random(800, 800, 8000, seed=33)
        points = sweep_channels(matrix, channel_counts=(2, 8))
        efficiencies = scaling_efficiency(points)
        assert efficiencies[0] == pytest.approx(1.0)
        assert 0.0 < efficiencies[1] <= 1.5

    def test_sweep_configs_custom_labeler(self):
        matrix = generators.diagonal(64, seed=2)
        configs = [ChasonConfig(), ChasonConfig(scug_size=2)]
        points = sweep_configs(
            matrix, configs, labeler=lambda c: f"scug{c.scug_size}"
        )
        assert [p.label for p in points] == ["scug4", "scug2"]
        assert points[0].urams != points[1].urams

    def test_empty_sweep_rejected(self):
        matrix = generators.diagonal(8, seed=1)
        with pytest.raises(ConfigError):
            sweep_configs(matrix, [])
        with pytest.raises(ConfigError):
            scaling_efficiency([])
