"""ChannelGrid / Schedule data structures and their invariants."""

import pytest

from repro.errors import RawHazardError, SchedulingError
from repro.scheduling.base import (
    ChannelGrid,
    Schedule,
    ScheduledElement,
    pe_for_row,
)


def element(row, channel=0, pe=0, value=1.0, col=0):
    return ScheduledElement(row, col, value, channel, pe)


class TestPeForRow:
    def test_eq1_mapping(self, small_serpens):
        # 4 channels x 4 PEs: row 0 → (0,0), row 5 → (1,1), row 17 → (0,1).
        assert pe_for_row(0, small_serpens) == (0, 0)
        assert pe_for_row(5, small_serpens) == (1, 1)
        assert pe_for_row(17, small_serpens) == (0, 1)

    def test_paper_config_mapping(self, paper_serpens):
        # 128 PEs: row 130 → global PE 2 → channel 0, PE 2.
        assert pe_for_row(130, paper_serpens) == (0, 2)
        assert pe_for_row(127, paper_serpens) == (15, 7)


class TestChannelGrid:
    def test_place_and_slot(self):
        grid = ChannelGrid(channel_id=0, pes=4)
        grid.place(2, 1, element(0))
        assert grid.length == 3
        assert grid.slot(2, 1).row == 0
        assert grid.slot(0, 0) is None

    def test_double_place_rejected(self):
        grid = ChannelGrid(channel_id=0, pes=4)
        grid.place(0, 0, element(0))
        with pytest.raises(SchedulingError):
            grid.place(0, 0, element(4))

    def test_place_bounds(self):
        grid = ChannelGrid(channel_id=0, pes=4)
        with pytest.raises(SchedulingError):
            grid.place(0, 4, element(0))
        with pytest.raises(SchedulingError):
            grid.place(-1, 0, element(0))

    def test_take_removes(self):
        grid = ChannelGrid(channel_id=0, pes=4)
        grid.place(1, 2, element(0))
        taken = grid.take(1, 2)
        assert taken.row == 0
        assert grid.slot(1, 2) is None
        with pytest.raises(SchedulingError):
            grid.take(1, 2)

    def test_stall_count(self):
        grid = ChannelGrid(channel_id=0, pes=4)
        grid.ensure_length(3)
        grid.place(0, 0, element(0))
        assert grid.stall_count == 11
        assert grid.element_count == 1

    def test_trim_trailing_stalls(self):
        grid = ChannelGrid(channel_id=0, pes=4)
        grid.place(1, 0, element(0))
        grid.ensure_length(10)
        grid.trim_trailing_stalls()
        assert grid.length == 2

    def test_trim_empty_grid(self):
        grid = ChannelGrid(channel_id=0, pes=4)
        grid.ensure_length(5)
        grid.trim_trailing_stalls()
        assert grid.length == 0

    def test_holes_in_stream_order(self):
        grid = ChannelGrid(channel_id=0, pes=2)
        grid.ensure_length(2)
        grid.place(0, 1, element(0, pe=1))
        assert list(grid.holes()) == [(0, 0), (1, 0), (1, 1)]

    def test_iter_elements_sorted(self):
        grid = ChannelGrid(channel_id=0, pes=2)
        grid.place(1, 0, element(2))
        grid.place(0, 1, element(1, pe=1))
        order = [(c, p) for c, p, _ in grid.iter_elements()]
        assert order == [(0, 1), (1, 0)]

    def test_own_elements_tail_first(self):
        grid = ChannelGrid(channel_id=3, pes=2)
        grid.place(0, 0, element(3, channel=3))
        grid.place(2, 1, element(11, channel=3, pe=1))
        grid.place(1, 0, element(7, channel=2))  # migrated in: excluded
        own = grid.own_elements_tail_first()
        assert [(c, p) for c, p, _ in own] == [(2, 1), (0, 0)]

    def test_cycle_slots(self):
        grid = ChannelGrid(channel_id=0, pes=3)
        grid.place(0, 2, element(0, pe=2))
        slots = grid.cycle_slots(0)
        assert slots[0] is None and slots[2].row == 0


class TestScheduleInvariants:
    def _schedule(self, config, grids):
        return Schedule(config=config, grids=grids, scheme="test")

    def _grids(self, config):
        return [
            ChannelGrid(channel_id=c, pes=config.pes_per_channel)
            for c in range(config.sparse_channels)
        ]

    def test_wrong_grid_count(self, small_serpens):
        with pytest.raises(SchedulingError):
            Schedule(config=small_serpens, grids=[], scheme="test")

    def test_equalise_and_underutilization(self, small_serpens):
        grids = self._grids(small_serpens)
        grids[0].place(0, 0, element(0))
        grids[1].place(4, 1, element(5, channel=1, pe=1))
        schedule = self._schedule(small_serpens, grids)
        schedule.equalise()
        assert schedule.stream_cycles == 5
        assert all(len(g) == 5 for g in schedule.grids)
        # Eq. 4: 2 nnz in 5*4*4 slots.
        assert schedule.total_stalls == 78
        assert schedule.underutilization == pytest.approx(78 / 80)

    def test_empty_schedule(self, small_serpens):
        schedule = self._schedule(small_serpens, self._grids(small_serpens))
        assert schedule.underutilization == 0.0
        assert schedule.traffic_bytes == 0

    def test_validate_accepts_private_in_home_lane(self, small_serpens):
        grids = self._grids(small_serpens)
        grids[1].place(0, 1, element(5, channel=1, pe=1))
        self._schedule(small_serpens, grids).validate()

    def test_validate_rejects_wrong_lane(self, small_serpens):
        grids = self._grids(small_serpens)
        grids[1].place(0, 3, element(5, channel=1, pe=1))
        with pytest.raises(SchedulingError):
            self._schedule(small_serpens, grids).validate()

    def test_validate_rejects_migration_without_span(self, small_serpens):
        # SerpensConfig has no migration span: any foreign element fails.
        grids = self._grids(small_serpens)
        grids[0].place(0, 0, element(5, channel=1, pe=1))
        with pytest.raises(SchedulingError):
            self._schedule(small_serpens, grids).validate()

    def test_validate_accepts_migration_within_span(self, small_chason):
        grids = self._grids(small_chason)
        grids[0].place(0, 0, element(5, channel=1, pe=1))
        self._schedule(small_chason, grids).validate()

    def test_validate_rejects_migration_beyond_span(self, small_chason):
        grids = self._grids(small_chason)
        grids[0].place(0, 0, element(10, channel=2, pe=2))
        with pytest.raises(SchedulingError):
            self._schedule(small_chason, grids).validate()

    def test_validate_raw_distance(self, small_chason):
        grids = self._grids(small_chason)
        # Same migrated row twice in the same PE, 2 < distance 4 apart.
        grids[0].place(0, 0, element(5, channel=1, pe=1))
        grids[0].place(2, 0, element(5, channel=1, pe=1))
        with pytest.raises(RawHazardError):
            self._schedule(small_chason, grids).validate()

    def test_validate_allows_same_row_other_pe(self, small_chason):
        grids = self._grids(small_chason)
        grids[0].place(0, 0, element(5, channel=1, pe=1))
        grids[0].place(1, 1, element(5, channel=1, pe=1))
        self._schedule(small_chason, grids).validate()

    def test_channel_stalls(self, small_serpens):
        grids = self._grids(small_serpens)
        grids[0].place(0, 0, element(0))
        schedule = self._schedule(small_serpens, grids)
        schedule.equalise()
        stalls = schedule.channel_stalls()
        assert stalls[0] == 3
        assert stalls[1] == 4
