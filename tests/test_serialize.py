"""Schedule serialization in the §3.2 wire format."""

import numpy as np
import pytest

from repro.errors import FormatError, SchedulingError
from repro.matrices import generators
from repro.scheduling import (
    deserialize_schedule,
    schedule_crhcs,
    schedule_pe_aware,
    serialize_schedule,
)
from repro.sim import execute_schedule


class TestRoundTrip:
    def test_crhcs_roundtrip_stats(self, small_chason, skewed_matrix):
        schedule = schedule_crhcs(skewed_matrix, small_chason)
        data = serialize_schedule(schedule)
        loaded = deserialize_schedule(data, small_chason)
        assert loaded.nnz == schedule.nnz
        assert loaded.stream_cycles == schedule.stream_cycles
        assert loaded.total_stalls == schedule.total_stalls
        assert loaded.migrated_count == schedule.migrated_count
        assert loaded.scheme == schedule.scheme
        assert loaded.n_rows == schedule.n_rows
        loaded.validate()

    def test_roundtrip_preserves_execution(self, small_chason,
                                           skewed_matrix, rng):
        schedule = schedule_crhcs(skewed_matrix, small_chason)
        loaded = deserialize_schedule(serialize_schedule(schedule),
                                      small_chason)
        x = rng.normal(size=skewed_matrix.n_cols).astype(np.float32)
        original = execute_schedule(schedule, x)
        reloaded = execute_schedule(loaded, x)
        # float32 value truncation on the wire: compare loosely.
        assert reloaded.verify(original.y, rtol=1e-5)
        assert reloaded.cycles.total == original.cycles.total

    def test_pe_aware_roundtrip(self, small_serpens, small_matrix):
        schedule = schedule_pe_aware(small_matrix, small_serpens)
        loaded = deserialize_schedule(serialize_schedule(schedule),
                                      small_serpens)
        assert loaded.nnz == schedule.nnz
        assert loaded.migrated_count == 0

    def test_multi_tile_roundtrip(self, small_chason):
        matrix = generators.uniform_random(600, 300, 2500, seed=51)
        schedule = schedule_crhcs(matrix, small_chason)
        assert len(schedule.tiles) > 1
        loaded = deserialize_schedule(serialize_schedule(schedule),
                                      small_chason)
        assert len(loaded.tiles) == len(schedule.tiles)
        for original, reloaded in zip(schedule.tiles, loaded.tiles):
            assert reloaded.row_base == original.row_base
            assert reloaded.col_base == original.col_base
            assert reloaded.nnz == original.nnz


class TestErrors:
    def test_span_two_rejected(self, small_chason, skewed_matrix):
        schedule = schedule_crhcs(skewed_matrix, small_chason,
                                  migration_span=2)
        if schedule.migrated_count == 0:  # pragma: no cover - data dep.
            pytest.skip("no migration happened")
        with pytest.raises(SchedulingError):
            serialize_schedule(schedule)

    def test_bad_magic(self, small_chason):
        with pytest.raises(FormatError):
            deserialize_schedule(b"NOPE" + b"\x00" * 64, small_chason)

    def test_truncated_header(self, small_chason):
        with pytest.raises(FormatError):
            deserialize_schedule(b"CH", small_chason)

    def test_truncated_body(self, small_chason, tiny_matrix):
        schedule = schedule_crhcs(tiny_matrix, small_chason)
        data = serialize_schedule(schedule)
        with pytest.raises(FormatError):
            deserialize_schedule(data[:-8], small_chason)

    def test_trailing_garbage(self, small_chason, tiny_matrix):
        schedule = schedule_crhcs(tiny_matrix, small_chason)
        data = serialize_schedule(schedule) + b"\x00" * 8
        with pytest.raises(FormatError):
            deserialize_schedule(data, small_chason)

    def test_config_mismatch(self, small_chason, paper_chason,
                             tiny_matrix):
        schedule = schedule_crhcs(tiny_matrix, small_chason)
        data = serialize_schedule(schedule)
        with pytest.raises(FormatError):
            deserialize_schedule(data, paper_chason)
