"""Serving-layer tests: queue policy, coalescing, shedding, lifecycle.

Concurrency-sensitive behaviours (coalescing onto an executing leader,
deadline expiry, displacement, non-graceful shutdown) are made
deterministic with a gated runner: the worker blocks inside
``analyze`` until the test releases it, so "in flight" and "queued" are
states the test controls rather than races it hopes to win.

The two ISSUE-mandated properties live in :class:`TestDeterminism`
(coalesced concurrent responses are byte-identical to isolated serial
runs) and :class:`TestLifecycle` (graceful shutdown drains queued work
while new submissions are shed).
"""

from __future__ import annotations

import dataclasses
import json
import logging
import threading
import time

import pytest

from repro import telemetry
from repro.cli import main
from repro.errors import ConfigError, ServingError
from repro.knobs import RUNTIME_KNOBS, format_knobs, knob
from repro.matrices.generators import uniform_random
from repro.pipeline.runner import PipelineRunner
from repro.pipeline.stages import LoadStage
from repro.pipeline.store import pipeline_cache_capacity
from repro.scheduling.cache import schedule_cache_capacity
from repro.scheduling.registry import get_scheme
from repro.serving import (
    STATUS_ERROR,
    STATUS_EXPIRED,
    STATUS_OK,
    STATUS_REJECTED,
    AdmissionQueue,
    ServingClient,
    ServingEngine,
    SpMVRequest,
    request_from_json,
    serve_max_batch,
    serve_queue_capacity,
    serve_request_file,
    serve_worker_count,
)
from repro.telemetry.summarize import (
    percentile,
    summarize_latencies,
    summarize_records,
)

#: Small in-memory matrices keep every engine test sub-second.
MATRICES = [uniform_random(48, 48, 260, seed=seed) for seed in range(3)]


@pytest.fixture(autouse=True)
def _fresh_warnings():
    telemetry.reset_warnings()
    yield
    telemetry.reset_warnings()


def report_bytes(report) -> bytes:
    """Canonical serialisation used for byte-identity assertions."""
    return json.dumps(
        dataclasses.asdict(report), sort_keys=True
    ).encode()


def serial_report(request: SpMVRequest):
    """What one isolated, serial pipeline run answers for ``request``."""
    spec = get_scheme(request.scheme)
    config = request.resolve_config(spec)
    return PipelineRunner().analyze(request.source, spec, config).report


class _Item:
    """Minimal queue entry: priority, seq, optional absolute deadline."""

    def __init__(self, seq, priority=0, deadline_at=None):
        self.seq = seq
        self.priority = priority
        self.deadline_at = deadline_at

    def expired_at(self, now):
        return self.deadline_at is not None and now > self.deadline_at


class _GatedRunner:
    """Stands in for the engine's PipelineRunner; blocks until released."""

    def __init__(self):
        self.started = threading.Event()
        self.release = threading.Event()
        self.calls = 0
        self._runner = PipelineRunner()

    def analyze(self, source, spec, config, **kwargs):
        self.calls += 1
        self.started.set()
        assert self.release.wait(10.0), "test never released the runner"
        return self._runner.analyze(source, spec, config, **kwargs)


def gated_engine(**kwargs):
    """A started single-worker engine whose executions the test gates."""
    engine = ServingEngine(workers=1, **kwargs)
    gate = _GatedRunner()
    engine.runner = gate
    engine.start()
    return engine, gate


class TestAdmissionQueue:
    def test_priority_order_fifo_within_level(self):
        queue = AdmissionQueue(capacity=8)
        items = [_Item(seq=0), _Item(seq=1, priority=5), _Item(seq=2),
                 _Item(seq=3, priority=5)]
        for item in items:
            assert queue.push(item, now=0.0) == (True, None, [])
        popped = [queue.pop(timeout=0)[0] for _ in range(4)]
        assert [item.seq for item in popped] == [1, 3, 0, 2]

    def test_full_queue_rejects_equal_priority(self):
        queue = AdmissionQueue(capacity=2)
        assert queue.push(_Item(seq=0), now=0.0)[0]
        assert queue.push(_Item(seq=1), now=0.0)[0]
        admitted, displaced, expired = queue.push(_Item(seq=2), now=0.0)
        assert (admitted, displaced, expired) == (False, None, [])
        assert len(queue) == 2

    def test_higher_priority_displaces_the_tail(self):
        queue = AdmissionQueue(capacity=2)
        low = _Item(seq=0)
        queue.push(low, now=0.0)
        queue.push(_Item(seq=1, priority=3), now=0.0)
        admitted, displaced, _ = queue.push(
            _Item(seq=2, priority=9), now=0.0
        )
        assert admitted and displaced is low
        assert [i.priority for i, _ in
                [queue.pop(timeout=0) for _ in range(2)]] == [9, 3]

    def test_displacement_tie_evicts_newest_of_equals(self):
        """Regression: among equal-priority victims, displacement must
        take the *newest* arrival — evicting an older one would break
        the FIFO promise for entries that queued first."""
        queue = AdmissionQueue(capacity=3)
        equals = [_Item(seq=0), _Item(seq=1), _Item(seq=2)]
        for item in equals:
            assert queue.push(item, now=0.0) == (True, None, [])
        admitted, displaced, expired = queue.push(
            _Item(seq=3, priority=5), now=0.0
        )
        assert admitted and expired == []
        assert displaced is equals[2]  # newest of the tied tail
        popped = [queue.pop(timeout=0)[0] for _ in range(3)]
        assert [item.seq for item in popped] == [3, 0, 1]

    def test_expired_entries_are_purged_to_make_room(self):
        queue = AdmissionQueue(capacity=1)
        stale = _Item(seq=0, deadline_at=1.0)
        queue.push(stale, now=0.0)
        admitted, displaced, expired = queue.push(_Item(seq=1), now=2.0)
        assert admitted and displaced is None and expired == [stale]

    def test_pop_returns_expired_head_for_answering(self):
        queue = AdmissionQueue(capacity=4)
        stale = _Item(seq=0, deadline_at=0.5)
        live = _Item(seq=1)
        queue.push(stale, now=0.0)
        queue.push(live, now=0.0)
        entry, expired = queue.pop(timeout=0)
        assert entry is live and expired == [stale]

    def test_pop_times_out_empty(self):
        assert AdmissionQueue(4).pop(timeout=0.01) == (None, [])

    def test_pop_group_takes_matching_up_to_limit(self):
        queue = AdmissionQueue(capacity=8)
        items = [_Item(seq=i) for i in range(5)]
        for item in items:
            queue.push(item, now=0.0)
        taken = queue.pop_group(lambda i: i.seq % 2 == 0, limit=2)
        assert [i.seq for i in taken] == [0, 2]
        assert len(queue) == 3

    def test_reprioritize_moves_a_queued_entry_forward(self):
        queue = AdmissionQueue(capacity=4)
        first, second = _Item(seq=0), _Item(seq=1)
        queue.push(first, now=0.0)
        queue.push(second, now=0.0)
        assert queue.reprioritize(second, 7)
        assert queue.pop(timeout=0)[0] is second
        # An already-dispatched entry reports False (caller just waits).
        assert not queue.reprioritize(second, 9)


class TestRequest:
    def test_overrides_patch_the_scheme_default(self):
        spec = get_scheme("crhcs")
        request = SpMVRequest(MATRICES[0],
                              config_overrides={"sparse_channels": 2})
        assert request.resolve_config(spec).sparse_channels == 2

    def test_unknown_override_is_a_config_error(self):
        request = SpMVRequest(MATRICES[0],
                              config_overrides={"warp_speed": 9})
        with pytest.raises(ConfigError, match="invalid config override"):
            request.resolve_config(get_scheme("crhcs"))

    def test_fingerprint_ignores_service_params(self):
        base = SpMVRequest(MATRICES[0], priority=0)
        hot = SpMVRequest(MATRICES[0], priority=9, deadline_ms=5.0)
        assert base.work_fingerprint() == hot.work_fingerprint()

    def test_fingerprint_sees_config_overrides(self):
        base = SpMVRequest(MATRICES[0])
        patched = SpMVRequest(MATRICES[0],
                              config_overrides={"sparse_channels": 2})
        assert base.work_fingerprint() != patched.work_fingerprint()

    def test_from_json_roundtrip(self):
        request = request_from_json(
            '{"matrix": "CollegeMsg", "scheme": "pe_aware", '
            '"priority": 2, "deadline_ms": 50, '
            '"config": {"sparse_channels": 2}}'
        )
        assert request.source == "CollegeMsg"
        assert request.scheme == "pe_aware"
        assert request.priority == 2
        assert request.deadline_ms == 50.0
        assert request.config_overrides == {"sparse_channels": 2}

    @pytest.mark.parametrize("line, match", [
        ("not json", "not valid JSON"),
        ('["CollegeMsg"]', "must be a JSON object"),
        ('{"matrix": "a", "priorty": 1}', "unknown request fields"),
        ('{"scheme": "crhcs"}', "needs a 'matrix' field"),
        ('{"matrix": "a", "config": 3}', "must be an object"),
    ])
    def test_from_json_rejects_malformed_lines(self, line, match):
        with pytest.raises(ConfigError, match=match):
            request_from_json(line)


class TestDeterminism:
    def test_coalesced_concurrent_responses_match_serial_bytes(self):
        """ISSUE property: coalescing may change *when* and *how often*
        work runs, never *what* comes back."""
        requests = [
            SpMVRequest(MATRICES[index % len(MATRICES)],
                        scheme=scheme, priority=index % 3)
            for index, scheme in enumerate(
                ["crhcs", "pe_aware", "crhcs", "crhcs",
                 "pe_aware", "crhcs", "crhcs", "pe_aware", "crhcs"]
            )
        ]
        expected = [report_bytes(serial_report(r)) for r in requests]

        with ServingEngine(workers=4, queue_capacity=32) as engine:
            tickets = [None] * len(requests)

            def submit(offset):
                for index in range(offset, len(requests), 3):
                    tickets[index] = engine.submit(requests[index])

            threads = [threading.Thread(target=submit, args=(o,))
                       for o in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            responses = [t.result(timeout=30.0) for t in tickets]

        assert all(r.ok for r in responses)
        assert [report_bytes(r.report) for r in responses] == expected
        total = engine.stats["completed"] + engine.stats["coalesced"]
        assert total >= len(requests)

    def test_followers_share_one_execution(self):
        engine, gate = gated_engine(queue_capacity=8)
        try:
            leader = engine.submit(SpMVRequest(MATRICES[0]))
            assert gate.started.wait(5.0)
            followers = [engine.submit(SpMVRequest(MATRICES[0]))
                         for _ in range(3)]
            gate.release.set()
            lead_response = leader.result(timeout=30.0)
            shared = [f.result(timeout=30.0) for f in followers]
        finally:
            gate.release.set()
            engine.shutdown()
        assert gate.calls == 1
        assert lead_response.ok and not lead_response.coalesced
        assert all(r.ok and r.coalesced for r in shared)
        assert all(r.cache_status == "coalesced" for r in shared)
        assert {report_bytes(r.report) for r in shared} == {
            report_bytes(lead_response.report)
        }
        assert engine.stats["coalesced"] == 3


class TestLifecycle:
    def test_graceful_shutdown_drains_queued_work_and_sheds_new(self):
        """ISSUE property: drain answers everything admitted, rejects
        everything after."""
        engine = ServingEngine(workers=1, queue_capacity=16)
        engine.start()
        tickets = [engine.submit(SpMVRequest(m)) for m in MATRICES]
        engine.drain()
        late = engine.submit(SpMVRequest(MATRICES[0], priority=5))
        engine.shutdown(drain=True)
        assert all(t.result(timeout=30.0).ok for t in tickets)
        rejected = late.result(timeout=1.0)
        assert rejected.status == STATUS_REJECTED
        assert rejected.detail == "engine is draining"
        assert engine.stats["shed"] == 1

    def test_non_graceful_shutdown_sheds_the_queue(self):
        engine, gate = gated_engine(queue_capacity=8)
        blocker = engine.submit(SpMVRequest(MATRICES[0]))
        assert gate.started.wait(5.0)
        queued = engine.submit(SpMVRequest(MATRICES[1]))
        stopper = threading.Thread(
            target=engine.shutdown, kwargs={"drain": False}
        )
        stopper.start()
        shed = queued.result(timeout=5.0)
        gate.release.set()
        stopper.join(timeout=10.0)
        assert shed.status == STATUS_REJECTED
        assert shed.detail == "engine shutdown"
        assert blocker.result(timeout=5.0).ok  # in-flight batch finishes

    def test_submit_before_start_raises(self):
        engine = ServingEngine(workers=1)
        with pytest.raises(ServingError, match="not started"):
            engine.submit(SpMVRequest(MATRICES[0]))

    def test_double_start_raises(self):
        engine = ServingEngine(workers=1)
        engine.start()
        try:
            with pytest.raises(ServingError, match="already running"):
                engine.start()
        finally:
            engine.shutdown()

    def test_ticket_timeout_is_a_serving_error(self):
        engine, gate = gated_engine(queue_capacity=4)
        try:
            ticket = engine.submit(SpMVRequest(MATRICES[0]))
            with pytest.raises(ServingError, match="did not complete"):
                ticket.result(timeout=0.05)
        finally:
            gate.release.set()
            engine.shutdown()


class TestOverload:
    def test_queue_full_and_displacement_answer_structurally(self):
        engine, gate = gated_engine(queue_capacity=1)
        try:
            blocker = engine.submit(SpMVRequest(MATRICES[0]))
            assert gate.started.wait(5.0)
            queued = engine.submit(SpMVRequest(MATRICES[1]))
            bounced = engine.submit(SpMVRequest(MATRICES[2]))
            rejected = bounced.result(timeout=5.0)
            assert rejected.status == STATUS_REJECTED
            assert "queue full (capacity 1)" in rejected.detail
            urgent = engine.submit(SpMVRequest(MATRICES[2], priority=9))
            displaced = queued.result(timeout=5.0)
            assert displaced.status == STATUS_REJECTED
            assert "displaced" in displaced.detail
            gate.release.set()
            assert blocker.result(timeout=30.0).ok
            assert urgent.result(timeout=30.0).ok
            assert engine.stats["shed"] == 2
        finally:
            gate.release.set()
            engine.shutdown()

    def test_deadline_expiry_answers_expired(self):
        engine, gate = gated_engine(queue_capacity=8)
        try:
            blocker = engine.submit(SpMVRequest(MATRICES[0]))
            assert gate.started.wait(5.0)
            doomed = engine.submit(
                SpMVRequest(MATRICES[1], deadline_ms=1.0)
            )
            time.sleep(0.02)
            gate.release.set()
            expired = doomed.result(timeout=5.0)
            assert expired.status == STATUS_EXPIRED
            assert "deadline" in expired.detail
            assert blocker.result(timeout=30.0).ok
            assert engine.stats["expired"] == 1
        finally:
            gate.release.set()
            engine.shutdown()

    def test_malformed_work_answers_error_without_executing(self):
        with ServingEngine(workers=1) as engine:
            ticket = engine.submit(SpMVRequest("no-such-matrix"))
            response = ticket.result(timeout=1.0)
        assert response.status == STATUS_ERROR
        assert "unknown matrix" in response.detail
        assert engine.stats["errors"] == 1


class TestClientAndFiles:
    def test_client_blocking_request(self):
        with ServingEngine(workers=2) as engine:
            response = ServingClient(engine).request(
                MATRICES[0], scheme="pe_aware", timeout=30.0
            )
        assert response.ok
        assert response.report.scheme == "pe_aware"

    def test_serve_request_file_coalesces_duplicates(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        path.write_text(
            "# duplicate-heavy workload\n"
            '{"matrix": "CollegeMsg"}\n'
            "\n"
            '{"matrix": "CollegeMsg"}\n'
            '{"matrix": "CollegeMsg", "priority": 3}\n'
            '{"matrix": "bogus"}\n'
        )
        responses, latency, stats = serve_request_file(
            str(path), timeout=60.0
        )
        assert [r.status for r in responses] == [
            STATUS_OK, STATUS_OK, STATUS_OK, STATUS_ERROR,
        ]
        assert stats["coalesced"] >= 1
        assert {report_bytes(r.report) for r in responses[:3]} == {
            report_bytes(responses[0].report)
        }
        assert latency["count"] == 3 and latency["p50_ms"] > 0

    def test_request_file_skips_malformed_lines_naming_the_first(
        self, tmp_path, caplog
    ):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"matrix": "CollegeMsg"}\n{"matrx": "b"}\n'
        )
        with caplog.at_level(logging.WARNING):
            responses, _latency, _stats = serve_request_file(str(path))
        assert len(responses) == 1
        assert "skipped 1 malformed" in caplog.text
        assert "line 2" in caplog.text


class TestKnobs:
    def test_invalid_serve_knobs_fall_back_with_warning(
        self, monkeypatch, caplog
    ):
        monkeypatch.setenv("REPRO_SERVE_WORKERS", "many")
        monkeypatch.setenv("REPRO_SERVE_QUEUE", "1e3")
        monkeypatch.setenv("REPRO_SERVE_BATCH", "")
        with caplog.at_level(logging.WARNING):
            assert serve_worker_count() == 4
            assert serve_queue_capacity() == 256
            assert serve_max_batch() == 8
        assert "REPRO_SERVE_WORKERS" in caplog.text
        assert "REPRO_SERVE_QUEUE" in caplog.text

    def test_serve_knobs_clamp_to_minimum(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_WORKERS", "-2")
        assert serve_worker_count() == 1

    def test_invalid_cache_sizes_fall_back_with_warning(
        self, monkeypatch, caplog
    ):
        monkeypatch.setenv("REPRO_PIPELINE_CACHE_SIZE", "banana")
        monkeypatch.setenv("REPRO_SCHEDULE_CACHE_SIZE", "0x10")
        with caplog.at_level(logging.WARNING):
            assert pipeline_cache_capacity() == 64
            assert schedule_cache_capacity() == 16
        assert "REPRO_PIPELINE_CACHE_SIZE" in caplog.text
        assert "REPRO_SCHEDULE_CACHE_SIZE" in caplog.text

    def test_registry_covers_the_serving_knobs(self):
        names = {entry.name for entry in RUNTIME_KNOBS}
        assert {"REPRO_SERVE_WORKERS", "REPRO_SERVE_QUEUE",
                "REPRO_SERVE_BATCH", "REPRO_PIPELINE_CACHE_SIZE",
                "REPRO_SCHEDULE_CACHE_SIZE"} <= names
        assert knob("REPRO_SERVE_WORKERS").default == "4"

    def test_format_knobs_marks_explicit_settings(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_WORKERS", "2")
        rendered = format_knobs()
        line = next(l for l in rendered.splitlines()
                    if "REPRO_SERVE_WORKERS" in l)
        assert "*" in line and "2" in line


class TestTelemetryIntegration:
    def test_serving_spans_and_counters_are_emitted(self):
        with telemetry.capture() as cap:
            with ServingEngine(workers=1) as engine:
                tickets = [engine.submit(SpMVRequest(MATRICES[0]))
                           for _ in range(2)]
                for ticket in tickets:
                    assert ticket.result(timeout=30.0).ok
        spans = {r["name"] for r in cap.records if r["kind"] == "span"}
        assert "serving.enqueue" in spans
        assert any(name.startswith("serving.dispatch") for name in spans)
        assert any(name.startswith("serving.execute") for name in spans)
        counters = {r["name"] for r in cap.records
                    if r["kind"] == "counter"}
        assert {"serving.accepted", "serving.completed"} <= counters
        gauges = {r["name"] for r in cap.records if r["kind"] == "gauge"}
        assert "serving.queue_depth" in gauges
        assert "serving.latency.p95_ms" in gauges

    def test_summarize_has_latency_percentile_section(self):
        with telemetry.capture() as cap:
            for _ in range(3):
                with cap.span("serving.execute"):
                    pass
        table = summarize_latencies(cap.records)
        assert "p50" in table and "serving.execute" in table
        assert "latency percentiles" in summarize_records(cap.records)

    def test_percentile_math(self):
        assert percentile([4.0, 1.0, 3.0, 2.0], 50) == 2.5
        assert percentile([7.0], 99) == 7.0
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestCLI:
    def test_info_lists_runtime_knobs(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "runtime knobs" in out
        assert "REPRO_SERVE_WORKERS" in out

    def test_serve_writes_jsonl_responses(self, tmp_path, capsys):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            '{"matrix": "CollegeMsg"}\n{"matrix": "CollegeMsg"}\n'
        )
        out_path = tmp_path / "responses.jsonl"
        assert main(["serve", str(requests), "--out", str(out_path),
                     "--workers", "2"]) == 0
        lines = out_path.read_text().strip().splitlines()
        assert len(lines) == 2
        payloads = [json.loads(line) for line in lines]
        assert all(p["status"] == "ok" for p in payloads)
        summary = capsys.readouterr().out
        assert "served 2/2" in summary and "p95" in summary

    def test_submit_single_request(self, capsys):
        assert main(["submit", "CollegeMsg", "--scheme", "pe_aware",
                     "--set", "sparse_channels=2"]) == 0
        out = capsys.readouterr().out
        assert '"status":"ok"' in out

    def test_submit_bad_override_fails_structurally(self, capsys):
        assert main(["submit", "CollegeMsg",
                     "--set", "warp_speed=9"]) == 1
        out = capsys.readouterr().out
        assert '"status":"error"' in out
