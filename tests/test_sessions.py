"""Solver sessions: byte-identity, residency, failover, fairness, traces."""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.cluster import Cluster
from repro.cluster.faults import FaultPlan, FaultSpec
from repro.core import ChasonAccelerator
from repro.errors import ConfigError, SessionError
from repro.matrices import generate_named, laplacian_1d
from repro.serving import ResidentStateStore, ServingEngine
from repro.sessions import (
    SessionManager,
    SessionSpec,
    get_program,
    session_iter_batch,
    session_max,
    solver_programs,
)
from repro.solvers import conjugate_gradient, jacobi, power_iteration


def _offline(solver: str, matrix, b, **kwargs):
    accelerator = ChasonAccelerator()
    if solver == "power_iteration":
        return power_iteration(accelerator, matrix, **kwargs)
    if solver == "cg":
        return conjugate_gradient(accelerator, matrix, b, **kwargs)
    return jacobi(accelerator, matrix, b, omega=0.9, **kwargs)


def _session_kwargs(solver: str, b):
    if solver == "power_iteration":
        return {"params": {"seed": 0}}
    if solver == "cg":
        return {"params": {"b": b}}
    return {"params": {"b": b, "omega": 0.9}}


def _assert_identical(offline, result):
    assert result.solution.tobytes() == offline.solution.tobytes()
    assert result.iterations == offline.iterations
    assert result.residual == offline.residual
    assert result.converged == offline.converged
    assert result.history == offline.history
    assert result.accelerator_seconds == offline.accelerator_seconds


@pytest.fixture
def spd_system():
    matrix = laplacian_1d(48)
    b = np.random.default_rng(11).normal(size=48)
    return matrix, b


class TestByteIdentity:
    """``SolverSession.run()`` equals the offline loop, byte for byte."""

    @pytest.mark.parametrize("solver", solver_programs())
    def test_session_matches_offline_solver(self, solver, spd_system):
        matrix, b = spd_system
        offline = _offline(solver, matrix, b,
                           tolerance=1e-6, max_iterations=60)
        with ServingEngine() as engine:
            manager = SessionManager(engine=engine)
            with manager.open(
                matrix, solver=solver,
                tolerance=1e-6, max_iterations=60,
                **_session_kwargs(solver, b),
            ) as session:
                result = session.run()
        _assert_identical(offline, result)

    @pytest.mark.parametrize("solver", solver_programs())
    def test_session_survives_mid_run_crash(self, solver, spd_system):
        """Crash the leased device mid-iteration; the failed-over run
        re-materializes and still matches the uninterrupted offline
        solve exactly."""
        matrix, b = spd_system
        offline = _offline(solver, matrix, b,
                           tolerance=1e-8, max_iterations=60)
        with Cluster(devices=3) as cluster:
            manager = SessionManager(cluster=cluster)
            with manager.open(
                matrix, solver=solver,
                tolerance=1e-8, max_iterations=60,
                **_session_kwargs(solver, b),
            ) as session:
                session.step(iterations=3)
                session.device.crash()
                result = session.run()
            assert session.failovers >= 1
            assert session.rematerializations >= 1
        _assert_identical(offline, result)

    def test_seeded_fault_plan_crash_matches_offline(self):
        """A seeded ``REPRO_CLUSTER_FAULTS``-style crash plan kills the
        primary after a few executions; every session still converges to
        the fault-free answer."""
        matrix = laplacian_1d(40)
        offline = _offline("power_iteration", matrix, None,
                           tolerance=1e-10, max_iterations=25)
        plan = FaultPlan(seed=7)
        plan.add(FaultSpec(kind="crash", device_id="dev0", after=5))
        plan.add(FaultSpec(kind="crash", device_id="dev1", after=9))
        with Cluster(devices=3, fault_plan=plan) as cluster:
            manager = SessionManager(cluster=cluster)
            results = []
            for _ in range(3):
                with manager.open(
                    matrix, solver="power_iteration",
                    tolerance=1e-10, max_iterations=25,
                    params={"seed": 0},
                ) as session:
                    results.append(session.run(timeout=30.0))
        for result in results:
            _assert_identical(offline, result)

    @settings(max_examples=8, deadline=None)
    @given(batch=st.integers(min_value=1, max_value=7),
           max_iterations=st.integers(min_value=1, max_value=12))
    def test_property_stepping_granularity_never_changes_result(
        self, batch, max_iterations
    ):
        """Property: however the iterations are sliced into step
        batches, the session result is the offline loop's result."""
        matrix = laplacian_1d(32)
        offline = _offline("power_iteration", matrix, None,
                           tolerance=1e-9,
                           max_iterations=max_iterations)
        with ServingEngine(workers=1) as engine:
            manager = SessionManager(engine=engine)
            with manager.open(
                matrix, tolerance=1e-9, max_iterations=max_iterations,
                params={"seed": 0},
            ) as session:
                while not session.finished:
                    session.step(iterations=batch)
                result = session.result()
        _assert_identical(offline, result)


class TestResidentStateStore:
    def test_put_get_discard(self):
        store = ResidentStateStore(budget_bytes=1000)
        store.put("a", "state-a", 100)
        assert store.get("a") == "state-a"
        assert store.bytes == 100 and len(store) == 1
        store.discard("a")
        assert store.get("a") is None
        assert store.bytes == 0

    def test_evicts_least_recently_used_over_budget(self):
        store = ResidentStateStore(budget_bytes=250)
        store.put("a", 1, 100)
        store.put("b", 2, 100)
        assert store.get("a") == 1  # bump a: b is now LRU
        store.put("c", 3, 100)     # 300 > 250: evict b
        assert store.get("b") is None
        assert store.get("a") == 1 and store.get("c") == 3
        assert store.snapshot()["evictions"] == 1

    def test_never_evicts_the_only_entry(self):
        store = ResidentStateStore(budget_bytes=10)
        store.put("big", "x", 1000)
        assert store.get("big") == "x"

    def test_reput_replaces_accounting(self):
        store = ResidentStateStore(budget_bytes=1000)
        store.put("a", 1, 100)
        store.put("a", 2, 300)
        assert store.bytes == 300 and len(store) == 1

    def test_eviction_forces_rematerialization_same_result(self):
        """A state budget of one entry makes two interleaved sessions
        evict each other every step; re-materialization keeps both
        byte-identical to their offline runs."""
        matrix = laplacian_1d(32)
        offline = _offline("power_iteration", matrix, None,
                           tolerance=1e-10, max_iterations=20)
        with ServingEngine() as engine:
            engine.resident = ResidentStateStore(budget_bytes=1)
            manager = SessionManager(engine=engine)
            a = manager.open(matrix, tolerance=1e-10, max_iterations=20,
                             params={"seed": 0})
            b = manager.open(matrix, tolerance=1e-10, max_iterations=20,
                             params={"seed": 0})
            while not (a.finished and b.finished):
                if not a.finished:
                    a.step(iterations=2)
                if not b.finished:
                    b.step(iterations=2)
            result_a, result_b = a.result(), b.result()
            assert a.rematerializations + b.rematerializations > 0
            manager.close_all()
        _assert_identical(offline, result_a)
        _assert_identical(offline, result_b)


class TestConcurrentSessions:
    def test_many_interleaved_sessions_all_converge(self):
        matrix = laplacian_1d(32)
        offline = _offline("power_iteration", matrix, None,
                           tolerance=1e-9, max_iterations=15)
        with ServingEngine() as engine:
            manager = SessionManager(engine=engine)

            def solve(_index):
                with manager.open(
                    matrix, tolerance=1e-9, max_iterations=15,
                    params={"seed": 0},
                ) as session:
                    return session.run(timeout=60.0)

            with ThreadPoolExecutor(max_workers=12) as pool:
                results = list(pool.map(solve, range(30)))
        assert len(results) == 30
        for result in results:
            _assert_identical(offline, result)

    def test_iterations_are_monotonic_and_in_order(self):
        with ServingEngine() as engine:
            manager = SessionManager(engine=engine)
            with manager.open(laplacian_1d(32), tolerance=0.0,
                              max_iterations=20) as session:
                seen = [session.completed]
                while not session.finished:
                    payload = session.step(iterations=3)
                    assert payload["completed"] == session.completed
                    seen.append(session.completed)
        assert seen == sorted(seen)
        assert seen[-1] == 20

    def test_session_limit_is_enforced(self):
        with ServingEngine() as engine:
            matrix = laplacian_1d(16)
            manager = SessionManager(engine=engine, max_sessions=2)
            a = manager.open(matrix)
            b = manager.open(matrix)
            with pytest.raises(SessionError):
                manager.open(matrix)
            manager.close(a)
            c = manager.open(matrix)  # freed slot reusable
            manager.close_all()
            assert manager.active == 0
            assert c.status == "closed"
        del b


class TestSessionErrors:
    def test_unknown_solver_rejected_at_open(self):
        with ServingEngine() as engine:
            manager = SessionManager(engine=engine)
            with pytest.raises(ConfigError, match="unknown solver"):
                manager.open(laplacian_1d(16), solver="sor")

    def test_cg_without_rhs_is_a_structured_error(self):
        with ServingEngine() as engine:
            manager = SessionManager(engine=engine)
            session = manager.open(laplacian_1d(16), solver="cg")
            with pytest.raises(SessionError, match="params"):
                session.step()
            session.close()

    def test_step_after_close_raises(self):
        with ServingEngine() as engine:
            manager = SessionManager(engine=engine)
            session = manager.open(laplacian_1d(16))
            session.close()
            with pytest.raises(SessionError, match="closed"):
                session.step()

    def test_manager_needs_exactly_one_backend(self):
        with pytest.raises(ConfigError):
            SessionManager()
        with pytest.raises(ConfigError):
            SessionManager(engine=object(), cluster=object())


class TestSessionTracing:
    def test_one_root_span_per_session_with_iteration_children(self):
        with telemetry.capture() as cap:
            with ServingEngine() as engine:
                manager = SessionManager(engine=engine)
                with manager.open(laplacian_1d(32), tolerance=1e-9,
                                  max_iterations=12) as session:
                    session.run()
            telemetry.get().flush()
        spans = [r for r in cap.records
                 if r["kind"] == "span" and r.get("trace_id")]
        roots = [s for s in spans if not s.get("parent_span_id")]
        assert [s["name"] for s in roots] == ["session.request"]
        root = roots[0]
        assert root["attrs"]["iterations"] == session.completed
        assert root["attrs"]["solver"] == "power_iteration"
        # Every span of the tree resolves to the one root.
        ids = {s["span_id"] for s in spans}
        for span in spans:
            assert span["trace_id"] == root["trace_id"]
            if span.get("parent_span_id"):
                assert span["parent_span_id"] in ids
        iteration_spans = [s for s in spans
                           if s["name"].endswith("solver.iteration")]
        assert len(iteration_spans) == session.completed
        for span in iteration_spans:
            assert "residual" in span["attrs"]

    def test_offline_solver_emits_the_same_iteration_spans(self):
        matrix = laplacian_1d(32)
        with telemetry.capture() as cap:
            offline = power_iteration(ChasonAccelerator(), matrix,
                                      tolerance=1e-9, max_iterations=12)
        spans = [r for r in cap.records
                 if r["kind"] == "span"
                 and r["name"].endswith("solver.iteration")]
        assert len(spans) == offline.iterations
        assert [s["attrs"]["iteration"] for s in spans] == list(
            range(1, offline.iterations + 1)
        )
        assert spans[-1]["attrs"]["residual"] == offline.residual


class TestSessionSpecAndKnobs:
    def test_work_fingerprint_matches_one_shot_requests(self):
        from repro.serving import SpMVRequest

        spec = SessionSpec(source="c52", scheme="crhcs")
        request = SpMVRequest(source="c52", scheme="crhcs")
        assert spec.work_fingerprint() == request.work_fingerprint()

    def test_defaults(self):
        assert session_max() == 4096
        assert session_iter_batch() == 8

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_SESSION_MAX", "2")
        monkeypatch.setenv("REPRO_SESSION_ITER_BATCH", "3")
        assert session_max() == 2
        assert session_iter_batch() == 3

    def test_session_knobs_are_registered(self):
        from repro.knobs import RUNTIME_KNOBS

        names = {knob.name for knob in RUNTIME_KNOBS}
        assert {"REPRO_SESSION_MAX", "REPRO_SESSION_STATE_BUDGET",
                "REPRO_SESSION_ITER_BATCH"} <= names

    def test_programs_registry(self):
        assert solver_programs() == ("cg", "jacobi", "power_iteration")
        assert get_program("power").name == "power_iteration"
        with pytest.raises(ConfigError):
            get_program("gauss_seidel")


class TestSessionCLI:
    def test_session_run_command(self, capsys):
        from repro.cli import main

        assert main([
            "session", "run", "CollegeMsg", "--sessions", "2",
            "--tolerance", "1e-6", "--max-iterations", "10",
        ]) == 0
        out = capsys.readouterr().out
        assert "sessions 2 opened, 2 closed" in out
        assert "resident store:" in out

    def test_session_run_on_faulty_cluster(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CLUSTER_FAULTS", "crash:0:after=4")
        assert main([
            "session", "run", "CollegeMsg", "--sessions", "3",
            "--devices", "3",
            "--tolerance", "1e-6", "--max-iterations", "10",
        ]) == 0
        out = capsys.readouterr().out
        assert "sessions 3 opened, 3 closed" in out
