"""Reduction, rearrange, and the end-to-end execution engine."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.matrices import generators
from repro.scheduling.crhcs import schedule_crhcs
from repro.scheduling.pe_aware import schedule_pe_aware
from repro.scheduling.row_based import schedule_row_based
from repro.sim.engine import estimate_cycles, execute_schedule
from repro.sim.peg import ProcessingElementGroup
from repro.sim.reduction import ReductionUnit
from repro.scheduling.base import ScheduledElement


class TestReductionUnit:
    def test_reduces_across_pes(self, small_chason):
        peg = ProcessingElementGroup(0, small_chason)
        peg.load_x_window(np.ones(small_chason.column_window,
                                  dtype=np.float32))
        # Same donor row (channel 1, PE 2, row 6) processed in two dest PEs.
        peg.pes[0].process(ScheduledElement(6, 0, 2.0, 1, 2))
        peg.pes[3].process(ScheduledElement(6, 0, 5.0, 1, 2))
        reduced = ReductionUnit(peg).reduce()
        assert reduced.sums[(1, 2)][0] == pytest.approx(7.0)
        assert reduced.tree_additions == 1

    def test_empty_scugs(self, small_chason):
        peg = ProcessingElementGroup(0, small_chason)
        reduced = ReductionUnit(peg).reduce()
        assert reduced.sums == {}
        assert reduced.addresses_swept == 0


class TestExecuteFunctional:
    @pytest.mark.parametrize("scheduler", [
        schedule_pe_aware, schedule_row_based, schedule_crhcs,
    ])
    def test_matches_reference(self, scheduler, small_chason, small_serpens,
                               skewed_matrix, rng):
        config = (
            small_chason if scheduler is schedule_crhcs else small_serpens
        )
        schedule = scheduler(skewed_matrix, config)
        x = rng.normal(size=skewed_matrix.n_cols).astype(np.float32)
        execution = execute_schedule(schedule, x)
        assert execution.verify(skewed_matrix.matvec(x))

    def test_multi_window_matrix(self, small_chason, rng):
        matrix = generators.uniform_random(600, 300, 3000, seed=17)
        schedule = schedule_crhcs(matrix, small_chason)
        x = rng.normal(size=300).astype(np.float32)
        execution = execute_schedule(schedule, x)
        assert execution.verify(matrix.matvec(x))

    def test_empty_matrix(self, small_chason):
        from repro.formats.coo import COOMatrix

        matrix = COOMatrix.from_entries((8, 8), [])
        schedule = schedule_crhcs(matrix, small_chason)
        execution = execute_schedule(schedule, np.zeros(8,
                                                        dtype=np.float32))
        assert np.all(execution.y == 0.0)

    def test_mac_count_matches_nnz(self, small_chason, tiny_matrix, rng):
        schedule = schedule_crhcs(tiny_matrix, small_chason)
        x = rng.normal(size=16).astype(np.float32)
        execution = execute_schedule(schedule, x)
        assert execution.total_macs == tiny_matrix.nnz

    def test_shared_fraction_positive_for_crhcs(self, small_chason,
                                                skewed_matrix, rng):
        schedule = schedule_crhcs(skewed_matrix, small_chason)
        x = rng.normal(size=skewed_matrix.n_cols).astype(np.float32)
        execution = execute_schedule(schedule, x)
        assert execution.stats["shared_fraction"] > 0.0
        assert execution.shared_macs == schedule.migrated_count

    def test_rejects_wrong_x_length(self, small_chason, tiny_matrix):
        schedule = schedule_crhcs(tiny_matrix, small_chason)
        with pytest.raises(ShapeError):
            execute_schedule(schedule, np.zeros(7, dtype=np.float32))

    def test_verify_shape_check(self, small_chason, tiny_matrix, rng):
        schedule = schedule_crhcs(tiny_matrix, small_chason)
        x = rng.normal(size=16).astype(np.float32)
        execution = execute_schedule(schedule, x)
        with pytest.raises(ShapeError):
            execution.verify(np.zeros(3))

    def test_verify_detects_corruption(self, small_chason, tiny_matrix,
                                       rng):
        schedule = schedule_crhcs(tiny_matrix, small_chason)
        x = rng.normal(size=16).astype(np.float32)
        execution = execute_schedule(schedule, x)
        wrong = tiny_matrix.matvec(x) + 1.0
        assert not execution.verify(wrong)


class TestCycleModel:
    def test_estimate_matches_execution(self, small_chason, skewed_matrix,
                                        rng):
        schedule = schedule_crhcs(skewed_matrix, small_chason)
        estimated = estimate_cycles(schedule)
        x = rng.normal(size=skewed_matrix.n_cols).astype(np.float32)
        executed = execute_schedule(schedule, x)
        assert estimated.total == executed.cycles.total
        assert estimated.stream == executed.cycles.stream
        assert estimated.reduction == executed.cycles.reduction

    def test_serpens_has_no_reduction_cycles(self, small_serpens,
                                             skewed_matrix):
        schedule = schedule_pe_aware(skewed_matrix, small_serpens)
        assert estimate_cycles(schedule).reduction == 0

    def test_stream_cycles_dominate(self, small_serpens, skewed_matrix):
        cycles = estimate_cycles(schedule_pe_aware(skewed_matrix,
                                                   small_serpens))
        assert cycles.stream > cycles.drain
        assert cycles.total == (
            cycles.stream + cycles.x_load + cycles.drain
            + cycles.reduction + cycles.output + cycles.overhead
        )
        assert cycles.overhead > 0

    def test_latency_uses_frequency(self, small_chason, small_serpens,
                                    skewed_matrix, rng):
        x = rng.normal(size=skewed_matrix.n_cols).astype(np.float32)
        chason_exec = execute_schedule(
            schedule_crhcs(skewed_matrix, small_chason), x
        )
        assert chason_exec.latency_seconds == pytest.approx(
            chason_exec.cycles.total / (301e6)
        )
