"""FIFO, URAM/BRAM, PE and PEG unit models."""

import numpy as np
import pytest

from repro.errors import CapacityError, SimulationError
from repro.scheduling.base import ScheduledElement
from repro.sim.fifo import FifoStream
from repro.sim.memory import (
    BRAM_X_CAPACITY,
    URAM_PARTIAL_SUMS,
    BramXBuffer,
    ScugBankGroup,
    UramBank,
)
from repro.sim.pe import ProcessingElement
from repro.sim.peg import ProcessingElementGroup


class TestFifo:
    def test_fifo_order(self):
        fifo = FifoStream("s")
        fifo.push_all([1, 2, 3])
        assert fifo.pop() == 1
        assert fifo.pop() == 2
        assert list(fifo.drain()) == [3]
        assert fifo.empty

    def test_bounded_overflow(self):
        fifo = FifoStream("s", depth=2)
        fifo.push_all([1, 2])
        assert fifo.full
        with pytest.raises(CapacityError):
            fifo.push(3)

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            FifoStream("s").pop()

    def test_try_pop(self):
        fifo = FifoStream("s")
        assert fifo.try_pop() is None
        fifo.push(7)
        assert fifo.try_pop() == 7

    def test_total_pushed_counter(self):
        fifo = FifoStream("s")
        fifo.push_all(range(5))
        assert fifo.total_pushed == 5

    def test_negative_depth_rejected(self):
        with pytest.raises(CapacityError):
            FifoStream("s", depth=-1)


class TestUramBank:
    def test_accumulate_read_modify_write(self):
        bank = UramBank("u")
        assert bank.accumulate(0, 1.5) == pytest.approx(1.5)
        assert bank.accumulate(0, 2.0) == pytest.approx(3.5)
        assert bank.read(0) == pytest.approx(3.5)

    def test_capacity_enforced(self):
        bank = UramBank("u", capacity=4)
        bank.accumulate(3, 1.0)
        with pytest.raises(CapacityError):
            bank.accumulate(4, 1.0)

    def test_default_capacity_is_8192_sums(self):
        assert URAM_PARTIAL_SUMS == 8192

    def test_access_counters(self):
        bank = UramBank("u")
        bank.accumulate(0, 1.0)
        bank.read(0)
        assert bank.reads == 2
        assert bank.writes == 1

    def test_negative_address_rejected(self):
        with pytest.raises(SimulationError):
            UramBank("u").accumulate(-1, 1.0)

    def test_clear(self):
        bank = UramBank("u")
        bank.accumulate(0, 1.0)
        bank.clear()
        assert bank.read(0) == 0.0


class TestScugBankGroup:
    def test_one_bank_per_source_pe(self):
        scug = ScugBankGroup("s", source_pes=8, scug_size=8)
        scug.accumulate(3, 0, 2.0)
        assert scug.bank(3).read(0) == pytest.approx(2.0)
        assert scug.bank(2).read(0) == 0.0

    def test_shrunk_scug_halves_capacity(self):
        # §4.5: ScUG of 4 means two source PEs share a physical URAM.
        scug = ScugBankGroup("s", source_pes=8, scug_size=4)
        assert scug.sharing == 2
        assert scug.bank(0).capacity == URAM_PARTIAL_SUMS // 2

    def test_invalid_sizes(self):
        with pytest.raises(CapacityError):
            ScugBankGroup("s", source_pes=8, scug_size=0)
        with pytest.raises(CapacityError):
            ScugBankGroup("s", source_pes=8, scug_size=9)

    def test_source_pe_bounds(self):
        scug = ScugBankGroup("s", source_pes=4, scug_size=4)
        with pytest.raises(SimulationError):
            scug.bank(4)

    def test_aggregate_counters(self):
        scug = ScugBankGroup("s", source_pes=2, scug_size=2)
        scug.accumulate(0, 0, 1.0)
        scug.accumulate(1, 0, 1.0)
        assert scug.reads == 2 and scug.writes == 2


class TestBramXBuffer:
    def test_load_and_read(self):
        buffer = BramXBuffer("x")
        buffer.load_window(np.array([1.0, 2.0, 3.0]))
        assert buffer.read(1) == pytest.approx(2.0)
        assert buffer.reads == 1
        assert buffer.loads == 1

    def test_capacity(self):
        buffer = BramXBuffer("x", capacity=4)
        with pytest.raises(CapacityError):
            buffer.load_window(np.zeros(5))
        assert BRAM_X_CAPACITY == 8192

    def test_out_of_window_read(self):
        buffer = BramXBuffer("x")
        buffer.load_window(np.ones(4))
        with pytest.raises(SimulationError):
            buffer.read(4)


class TestProcessingElement:
    def _pe(self, config, channel=0, pe=0):
        xbuf = BramXBuffer("x", capacity=config.column_window)
        xbuf.load_window(np.arange(1, config.column_window + 1,
                                   dtype=np.float32))
        return ProcessingElement(channel, pe, config, xbuf)

    def test_private_accumulation(self, small_chason):
        pe = self._pe(small_chason)
        pe.process(ScheduledElement(0, 2, 2.0, 0, 0))  # x[2] = 3
        assert pe.uram_pvt.read(0) == pytest.approx(6.0)
        assert pe.stats.private_accumulations == 1

    def test_wrong_lane_private_rejected(self, small_chason):
        pe = self._pe(small_chason, channel=0, pe=0)
        with pytest.raises(SimulationError):
            pe.process(ScheduledElement(1, 0, 1.0, 0, 1))

    def test_shared_routed_to_scug(self, small_chason):
        pe = self._pe(small_chason, channel=0, pe=0)
        # Element of channel 1, PE 2 (row 6 in the small config).
        pe.process(ScheduledElement(6, 0, 3.0, 1, 2))
        scug = pe.scugs[1]
        assert scug.bank(2).read(0) == pytest.approx(3.0)
        assert pe.stats.shared_accumulations == 1

    def test_serpens_pe_rejects_migrated(self, small_serpens):
        pe = self._pe(small_serpens)
        with pytest.raises(SimulationError):
            pe.process(ScheduledElement(6, 0, 3.0, 1, 2))

    def test_span_limits_scug_count(self, small_chason):
        pe = self._pe(small_chason)
        pe.process(ScheduledElement(6, 0, 1.0, 1, 2))
        with pytest.raises(SimulationError):
            # A second donor channel exceeds migration_span=1.
            pe.process(ScheduledElement(10, 0, 1.0, 2, 2))

    def test_address_uses_row_position(self, small_chason):
        pe = self._pe(small_chason)
        # Rows 0 and 16 are both PE (0,0); addresses 0 and 1.
        pe.process(ScheduledElement(0, 0, 1.0, 0, 0))
        pe.process(ScheduledElement(16, 0, 1.0, 0, 0))
        assert pe.uram_pvt.read(0) == pytest.approx(1.0)
        assert pe.uram_pvt.read(1) == pytest.approx(1.0)

    def test_reset_clears_sums(self, small_chason):
        pe = self._pe(small_chason)
        pe.process(ScheduledElement(0, 0, 1.0, 0, 0))
        pe.process(ScheduledElement(6, 0, 1.0, 1, 2))
        pe.reset()
        assert pe.uram_pvt.read(0) == 0.0
        assert pe.scugs[1].bank(2).read(0) == 0.0


class TestPEG:
    def test_consume_word_routes_by_lane(self, small_chason):
        peg = ProcessingElementGroup(0, small_chason)
        peg.load_x_window(np.ones(small_chason.column_window,
                                  dtype=np.float32))
        slots = [None] * small_chason.pes_per_channel
        slots[2] = ScheduledElement(2, 0, 4.0, 0, 2)
        peg.consume_word(slots)
        assert peg.pes[2].uram_pvt.read(0) == pytest.approx(4.0)
        assert peg.pes[0].stats.idle_cycles == 1
        assert peg.cycles_consumed == 1

    def test_consume_word_checks_width(self, small_chason):
        peg = ProcessingElementGroup(0, small_chason)
        with pytest.raises(SimulationError):
            peg.consume_word([None] * 3)

    def test_consume_grid_counts_idle(self, small_chason):
        from repro.scheduling.base import ChannelGrid

        peg = ProcessingElementGroup(0, small_chason)
        peg.load_x_window(np.ones(small_chason.column_window,
                                  dtype=np.float32))
        grid = ChannelGrid(channel_id=0, pes=small_chason.pes_per_channel)
        grid.place(0, 0, ScheduledElement(0, 0, 1.0, 0, 0))
        grid.ensure_length(5)
        peg.consume_grid(grid)
        assert peg.total_macs == 1
        assert peg.total_idle == 5 * 4 - 1

    def test_consume_grid_checks_channel(self, small_chason):
        from repro.scheduling.base import ChannelGrid

        peg = ProcessingElementGroup(0, small_chason)
        with pytest.raises(SimulationError):
            peg.consume_grid(ChannelGrid(channel_id=1, pes=4))
