"""SNAP edge-list loader and the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.errors import FormatError
from repro.formats.io import load_matrix_market, load_snap_edgelist


class TestSnapEdgeList:
    def test_basic_load(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text(
            "# Directed graph\n# FromNodeId  ToNodeId\n"
            "0 1\n1 2\n2 0\n0 2\n"
        )
        graph = load_snap_edgelist(path)
        assert graph.shape == (3, 3)
        assert graph.nnz == 4
        assert np.all(graph.values == 1.0)

    def test_explicit_node_count(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 1\n")
        graph = load_snap_edgelist(path, n_nodes=10)
        assert graph.shape == (10, 10)

    def test_node_count_too_small(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 5\n")
        with pytest.raises(FormatError):
            load_snap_edgelist(path, n_nodes=3)

    def test_weighted(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 1 2.5\n1 0 -1.0\n")
        graph = load_snap_edgelist(path, weighted=True)
        assert graph.to_dense()[0, 1] == pytest.approx(2.5)

    def test_weighted_missing_weight(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 1\n")
        with pytest.raises(FormatError):
            load_snap_edgelist(path, weighted=True)

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0\n")
        with pytest.raises(FormatError):
            load_snap_edgelist(path)

    def test_gzip(self, tmp_path):
        import gzip

        path = tmp_path / "graph.txt.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("0 1\n1 0\n")
        assert load_snap_edgelist(path).nnz == 2

    def test_duplicate_edges_kept(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 1\n0 1\n")
        graph = load_snap_edgelist(path)
        assert graph.nnz == 2  # multigraph edges sum under CSR


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "301 MHz" in out
        assert "URAM" in out

    def test_matrices(self, capsys):
        assert main(["matrices"]) == 0
        out = capsys.readouterr().out
        assert "wiki-Vote" in out
        assert "103689" in out

    def test_schedule(self, capsys):
        assert main(["schedule", "CollegeMsg", "--scheme", "pe_aware"]) == 0
        out = capsys.readouterr().out
        assert "pe_aware" in out
        assert "underutilization" in out

    def test_compare(self, capsys):
        assert main(["compare", "CollegeMsg"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "chason" in out and "serpens" in out

    def test_corpus(self, capsys):
        assert main(["corpus", "--count", "3", "--cap", "2000"]) == 0
        out = capsys.readouterr().out
        assert "geomean speedup" in out

    def test_generate_roundtrip(self, tmp_path, capsys):
        out_path = tmp_path / "cm.mtx"
        assert main(["generate", "CollegeMsg", "--out", str(out_path)]) == 0
        matrix = load_matrix_market(out_path)
        assert matrix.nnz == 20296

    def test_unknown_matrix_rejected(self):
        with pytest.raises(SystemExit):
            main(["compare", "not-a-matrix"])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_characterize(self, capsys):
        assert main(["characterize", "wiki-Vote"]) == 0
        out = capsys.readouterr().out
        assert "predicted underutilization" in out
        assert "migration worthwhile: yes" in out

    def test_spmm(self, capsys):
        assert main(["spmm", "CollegeMsg", "--bcols", "8"]) == 0
        out = capsys.readouterr().out
        assert "chason  SpMM" in out
        assert "speedup" in out

    def test_schedule_row_split(self, capsys):
        assert main(["schedule", "as-735", "--scheme", "row_split"]) == 0
        assert "row_split" in capsys.readouterr().out
