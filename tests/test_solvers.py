"""Accelerator-driven iterative solvers."""

import numpy as np
import pytest

from repro.core.chason import ChasonAccelerator
from repro.baselines.serpens import SerpensAccelerator
from repro.errors import ShapeError, SimulationError
from repro.formats.coo import COOMatrix
from repro.matrices import generators
from repro.solvers import conjugate_gradient, jacobi, power_iteration


def laplacian_1d(n: int) -> COOMatrix:
    """Tridiagonal SPD system (1-D Poisson)."""
    entries = []
    for i in range(n):
        entries.append((i, i, 2.0))
        if i > 0:
            entries.append((i, i - 1, -1.0))
        if i < n - 1:
            entries.append((i, i + 1, -1.0))
    return COOMatrix.from_entries((n, n), entries)


def diag_dominant(n: int, seed: int = 0) -> COOMatrix:
    """Random strictly diagonally dominant matrix (Jacobi converges)."""
    base = generators.uniform_random(n, n, 4 * n, seed=seed)
    rows = np.concatenate([base.rows, np.arange(n)])
    cols = np.concatenate([base.cols, np.arange(n)])
    values = np.concatenate(
        [0.1 * base.values, np.full(n, 5.0, dtype=np.float32)]
    )
    return COOMatrix((n, n), rows, cols, values)


@pytest.fixture
def chason(small_chason):
    return ChasonAccelerator(small_chason)


class TestJacobi:
    def test_converges_on_diag_dominant(self, chason):
        matrix = diag_dominant(120, seed=2)
        rng = np.random.default_rng(2)
        solution = rng.normal(size=120)
        b = matrix.matvec(solution)
        result = jacobi(chason, matrix, b, tolerance=1e-5,
                        max_iterations=300)
        assert result.converged
        assert np.allclose(result.solution, solution, atol=1e-3)
        assert result.accelerator_seconds > 0
        assert len(result.history) == result.iterations
        assert result.history[-1] <= result.history[0]

    def test_weighted_jacobi(self, chason):
        matrix = diag_dominant(80, seed=3)
        b = matrix.matvec(np.ones(80))
        damped = jacobi(chason, matrix, b, omega=0.7, tolerance=1e-5,
                        max_iterations=400)
        assert damped.converged

    def test_rejects_zero_diagonal(self, chason):
        matrix = COOMatrix.from_entries((2, 2), [(0, 1, 1.0), (1, 0, 1.0)])
        with pytest.raises(SimulationError):
            jacobi(chason, matrix, np.ones(2))

    def test_rejects_nonsquare(self, chason):
        matrix = generators.uniform_random(4, 6, 8, seed=1)
        with pytest.raises(ShapeError):
            jacobi(chason, matrix, np.ones(4))

    def test_rejects_bad_rhs(self, chason):
        with pytest.raises(ShapeError):
            jacobi(chason, diag_dominant(10), np.ones(9))

    def test_non_convergence_reported(self, chason):
        matrix = diag_dominant(60, seed=4)
        b = matrix.matvec(np.ones(60))
        result = jacobi(chason, matrix, b, tolerance=1e-14,
                        max_iterations=3)
        assert not result.converged
        assert result.iterations == 3


class TestPowerIteration:
    def test_finds_dominant_eigenpair(self, chason):
        # Symmetric matrix with a known dominant eigenvector.
        matrix = laplacian_1d(64)
        result = power_iteration(chason, matrix, tolerance=1e-6,
                                 max_iterations=600, seed=5)
        eigenvalue = result.history[-1]
        dense = matrix.to_dense()
        true_max = np.max(np.linalg.eigvalsh(dense))
        assert eigenvalue == pytest.approx(true_max, rel=1e-2)
        # Rayleigh residual: ||A v - lambda v|| small.
        residual = np.linalg.norm(
            dense @ result.solution - eigenvalue * result.solution
        )
        assert residual < 0.1

    def test_unit_norm_solution(self, chason):
        matrix = laplacian_1d(32)
        result = power_iteration(chason, matrix, max_iterations=50, seed=6)
        assert np.linalg.norm(result.solution) == pytest.approx(1.0,
                                                                abs=1e-5)

    def test_rejects_nonsquare(self, chason):
        with pytest.raises(ShapeError):
            power_iteration(chason,
                            generators.uniform_random(4, 6, 8, seed=1))


class TestConjugateGradient:
    def test_solves_spd_system(self, chason):
        matrix = laplacian_1d(96)
        rng = np.random.default_rng(7)
        solution = rng.normal(size=96)
        b = matrix.matvec(solution)
        # float32 SpMV noise floors the achievable residual near 1e-6.
        result = conjugate_gradient(chason, matrix, b, tolerance=1e-5)
        assert result.converged
        assert np.allclose(result.solution, solution, atol=1e-2)
        # CG on an n-dim SPD system needs at most n SpMVs (plus noise).
        assert result.iterations <= 96

    def test_works_on_serpens_too(self, small_serpens):
        serpens = SerpensAccelerator(small_serpens)
        matrix = laplacian_1d(48)
        b = matrix.matvec(np.ones(48))
        result = conjugate_gradient(serpens, matrix, b, tolerance=1e-6)
        assert result.converged

    def test_accounts_accelerator_time(self, chason):
        matrix = laplacian_1d(48)
        b = matrix.matvec(np.ones(48))
        result = conjugate_gradient(chason, matrix, b, tolerance=1e-6)
        assert result.accelerator_seconds > 0
        assert result.accelerator_ms == pytest.approx(
            1e3 * result.accelerator_seconds
        )

    def test_zero_rhs_trivial(self, chason):
        matrix = laplacian_1d(16)
        result = conjugate_gradient(chason, matrix, np.zeros(16))
        assert result.converged
        assert np.allclose(result.solution, 0.0)

    def test_rejects_bad_shapes(self, chason):
        with pytest.raises(ShapeError):
            conjugate_gradient(chason, laplacian_1d(8), np.ones(9))
        with pytest.raises(ShapeError):
            conjugate_gradient(
                chason, generators.uniform_random(4, 6, 8, seed=1),
                np.ones(4),
            )
