"""SpTRSV extension, host/deployment model, and the Sextans baseline."""

import numpy as np
import pytest

from repro.config import ChasonConfig
from repro.core.host import (
    CPU_PROTOCOL,
    FPGA_PROTOCOL,
    GPU_PROTOCOL,
    HostLinkModel,
    MeasurementProtocol,
    estimate_deployment,
)
from repro.core.spmm import chason_spmm_report, sextans_spmm_report
from repro.core.sptrsv import chason_sptrsv, level_sets
from repro.errors import ConfigError, ShapeError, SimulationError
from repro.formats.coo import COOMatrix
from repro.matrices import generators


def lower_triangular(n: int, extra_per_row: int = 2, seed: int = 0):
    """Random lower-triangular matrix with a safe diagonal."""
    rng = np.random.default_rng(seed)
    rows, cols, values = [], [], []
    for i in range(n):
        rows.append(i)
        cols.append(i)
        values.append(4.0 + rng.random())
        if i:
            count = int(rng.integers(0, min(extra_per_row, i) + 1))
            below = rng.choice(i, size=count, replace=False)
            for j in below:
                rows.append(i)
                cols.append(int(j))
                values.append(float(rng.normal()))
    return COOMatrix((n, n), np.array(rows), np.array(cols),
                     np.array(values, dtype=np.float32))


@pytest.fixture
def small_cfg(small_chason):
    return small_chason


class TestLevelSets:
    def test_diagonal_is_single_level(self):
        matrix = generators.diagonal(12, seed=0)
        levels = level_sets(matrix)
        assert len(levels) == 1
        assert levels[0].size == 12

    def test_bidiagonal_is_fully_serial(self):
        entries = [(i, i, 2.0) for i in range(6)]
        entries += [(i, i - 1, 1.0) for i in range(1, 6)]
        matrix = COOMatrix.from_entries((6, 6), entries)
        levels = level_sets(matrix)
        assert len(levels) == 6
        assert all(level.size == 1 for level in levels)

    def test_levels_partition_rows(self):
        matrix = lower_triangular(60, seed=1)
        levels = level_sets(matrix)
        combined = np.sort(np.concatenate(levels))
        np.testing.assert_array_equal(combined, np.arange(60))

    def test_dependencies_respected(self):
        matrix = lower_triangular(60, seed=2)
        levels = level_sets(matrix)
        level_of = np.empty(60, dtype=int)
        for index, level in enumerate(levels):
            level_of[level] = index
        for row, col, _ in matrix:
            if col < row:
                assert level_of[col] < level_of[row]

    def test_rejects_upper_entries(self):
        matrix = COOMatrix.from_entries((3, 3),
                                        [(0, 0, 1.0), (0, 2, 1.0)])
        with pytest.raises(ShapeError):
            level_sets(matrix)

    def test_rejects_nonsquare(self):
        with pytest.raises(ShapeError):
            level_sets(generators.uniform_random(3, 4, 2, seed=0))


class TestSpTRSV:
    def test_solves_system(self, small_cfg):
        matrix = lower_triangular(80, seed=3)
        rng = np.random.default_rng(3)
        solution = rng.normal(size=80)
        b = matrix.matvec(solution)
        x, report = chason_sptrsv(matrix, b, config=small_cfg)
        np.testing.assert_allclose(x, solution, rtol=1e-3, atol=1e-3)
        assert report.levels == len(level_sets(matrix))
        assert report.total_cycles > 0
        assert report.latency_ms > 0

    def test_analytic_path_matches_functional(self, small_cfg):
        matrix = lower_triangular(60, seed=4)
        b = matrix.matvec(np.ones(60))
        x_func, rep_func = chason_sptrsv(matrix, b, config=small_cfg,
                                         functional=True)
        x_fast, rep_fast = chason_sptrsv(matrix, b, config=small_cfg,
                                         functional=False)
        np.testing.assert_allclose(x_fast, x_func, rtol=1e-3, atol=1e-4)
        assert rep_fast.total_cycles == rep_func.total_cycles

    def test_serial_chain_is_latency_bound(self, small_cfg):
        # A bidiagonal chain has n levels of one row each: latency is
        # dominated by per-level overheads, not streaming.
        entries = [(i, i, 2.0) for i in range(20)]
        entries += [(i, i - 1, 1.0) for i in range(1, 20)]
        chain = COOMatrix.from_entries((20, 20), entries)
        b = chain.matvec(np.ones(20))
        _, report = chason_sptrsv(chain, b, config=small_cfg,
                                  functional=False)
        assert report.levels == 20
        assert report.total_cycles >= (
            20 * small_cfg.invocation_overhead_cycles
        )

    def test_rejects_zero_diagonal(self, small_cfg):
        matrix = COOMatrix.from_entries((2, 2), [(1, 0, 1.0), (0, 0, 1.0)])
        with pytest.raises(SimulationError):
            chason_sptrsv(matrix, np.ones(2), config=small_cfg)

    def test_rejects_bad_rhs(self, small_cfg):
        with pytest.raises(ShapeError):
            chason_sptrsv(lower_triangular(5), np.ones(4),
                          config=small_cfg)

    def test_mean_level_width(self, small_cfg):
        matrix = generators.diagonal(16, seed=0)
        _, report = chason_sptrsv(matrix, np.ones(16), config=small_cfg,
                                  functional=False)
        assert report.mean_level_width == pytest.approx(16.0)


class TestHostModel:
    def test_transfer_time(self):
        link = HostLinkModel(pcie_bandwidth_gbps=12.0, pcie_latency_s=0.0)
        assert link.transfer_seconds(12_000_000_000) == pytest.approx(1.0)

    def test_latency_floor(self):
        link = HostLinkModel()
        assert link.transfer_seconds(0) == pytest.approx(link.pcie_latency_s)

    def test_validation(self):
        with pytest.raises(ConfigError):
            HostLinkModel(pcie_bandwidth_gbps=0)
        with pytest.raises(ConfigError):
            HostLinkModel().transfer_seconds(-1)
        with pytest.raises(ConfigError):
            MeasurementProtocol("x", iterations=0)

    def test_paper_protocols(self):
        # §5.2: 1000 FPGA iterations, 10 GPU, 100 CPU after 100 warm-ups.
        assert FPGA_PROTOCOL.iterations == 1000
        assert GPU_PROTOCOL.iterations == 10
        assert CPU_PROTOCOL.iterations == 100
        assert CPU_PROTOCOL.warmup_iterations == 100

    def test_amortisation_rationale(self):
        # The §5.2 methodology: at 1000 iterations the one-time costs stop
        # distorting the per-iteration measurement; at 1 they dominate.
        estimate_1 = estimate_deployment(
            kernel_seconds=20e-6, schedule_bytes=10_000_000,
            vector_bytes=64_000, iterations=1,
        )
        estimate_1000 = estimate_deployment(
            kernel_seconds=20e-6, schedule_bytes=10_000_000,
            vector_bytes=64_000, iterations=1000,
        )
        assert estimate_1.amortisation_error > 100.0
        assert estimate_1000.amortisation_error < 100.0
        assert (
            estimate_1000.amortised_iteration_seconds
            < estimate_1.amortised_iteration_seconds
        )

    def test_totals_add_up(self):
        estimate = estimate_deployment(
            kernel_seconds=1e-5, schedule_bytes=1_000_000,
            vector_bytes=10_000, iterations=10,
            include_reconfiguration=False,
        )
        assert estimate.total_seconds == pytest.approx(
            estimate.one_time_seconds
            + 10 * estimate.per_iteration_seconds
        )

    def test_kernel_latency_validated(self):
        with pytest.raises(ConfigError):
            estimate_deployment(0.0, 1, 1)


class TestSextansBaseline:
    def test_chason_beats_sextans_on_graphs(self):
        matrix = generators.chung_lu_graph(1500, 15000, alpha=2.1, seed=9)
        chason = chason_spmm_report(matrix, b_cols=16)
        sextans = sextans_spmm_report(matrix, b_cols=16)
        assert chason.latency_ms < sextans.latency_ms
        assert chason.throughput_gflops > sextans.throughput_gflops
        assert sextans.migrated == 0
        assert chason.migrated > 0

    def test_same_flop_count(self):
        matrix = generators.uniform_random(400, 400, 3000, seed=10)
        chason = chason_spmm_report(matrix, b_cols=8)
        sextans = sextans_spmm_report(matrix, b_cols=8)
        assert chason.nnz == sextans.nnz == matrix.nnz
        assert chason.b_cols == sextans.b_cols
