"""Tests for the telemetry subsystem (spans, counters, JSONL traces)."""

import json
import logging

import pytest

from repro import telemetry
from repro.analysis.runner import (
    WORKERS_ENV,
    corpus_worker_count,
    run_over_specs,
)
from repro.config import DEFAULT_CHASON, DEFAULT_SERPENS
from repro.errors import SimulationError, TelemetryError
from repro.matrices.collection import corpus_specs
from repro.scheduling.cache import ScheduleCache
from repro.scheduling.crhcs import MigrationReport, schedule_crhcs
from repro.scheduling.pe_aware import schedule_pe_aware
from repro.sim.trace import TRACE_MAX_ENV, ScheduleTrace
from repro.telemetry.schema import (
    validate_file,
    validate_record,
    validate_records,
)
from repro.telemetry.summarize import summarize_records

SPEC = corpus_specs(count=1, nnz_cap=2_000)[0]
MATRIX = SPEC.generate()


@pytest.fixture(autouse=True)
def _clean_telemetry_state():
    """Every test starts disabled with a clean one-time-warning registry."""
    telemetry.disable()
    telemetry.reset_warnings()
    yield
    telemetry.disable()
    telemetry.reset_warnings()


class TestDisabledPath:
    def test_unset_env_resolves_to_null(self, monkeypatch):
        monkeypatch.delenv(telemetry.TELEMETRY_ENV, raising=False)
        telemetry.reset()
        active = telemetry.get()
        assert active is telemetry.NULL
        assert active.enabled is False

    def test_null_instruments_are_no_ops(self):
        null = telemetry.NULL
        with null.span("anything", attr=1) as span:
            span.annotate(more=2)
            null.counter("c", 5, k="v")
            null.gauge("g", 1.5)
        assert null.counter_total("c") == 0
        null.flush()
        null.close()

    def test_null_span_is_one_shared_object(self):
        assert telemetry.NULL.span("a") is telemetry.NULL.span("b")

    def test_disabled_scheduling_emits_nothing(self):
        # The instrumented hot path must not blow up (or record) when
        # telemetry is off — the default state of every test run.
        schedule = schedule_pe_aware(MATRIX, DEFAULT_SERPENS)
        assert schedule.nnz == MATRIX.nnz


class TestSpans:
    def test_nesting_builds_slash_paths(self):
        with telemetry.capture() as cap:
            with cap.span("outer"):
                with cap.span("inner"):
                    pass
        names = [r["name"] for r in cap.records if r["kind"] == "span"]
        assert names == ["outer/inner", "outer"]

    def test_children_close_before_parents(self):
        with telemetry.capture() as cap:
            with cap.span("a"):
                with cap.span("b"):
                    with cap.span("c"):
                        pass
        seqs = {r["name"]: r["seq"] for r in cap.records}
        assert seqs["a/b/c"] < seqs["a/b"] < seqs["a"]

    def test_sibling_spans_reuse_parent_path(self):
        with telemetry.capture() as cap:
            with cap.span("root"):
                with cap.span("first"):
                    pass
                with cap.span("second"):
                    pass
        names = [r["name"] for r in cap.records if r["kind"] == "span"]
        assert names == ["root/first", "root/second", "root"]

    def test_annotate_attaches_late_attributes(self):
        with telemetry.capture() as cap:
            with cap.span("work", early=1) as span:
                span.annotate(late=2)
        record = cap.records[0]
        assert record["attrs"] == {"early": 1, "late": 2}

    def test_durations_are_non_negative_and_ordered(self):
        with telemetry.capture() as cap:
            with cap.span("outer"):
                with cap.span("inner"):
                    pass
        inner, outer = cap.records
        assert 0 <= inner["duration_s"] <= outer["duration_s"]


class TestCountersAndGauges:
    def test_counter_accumulates_until_flush(self):
        with telemetry.capture() as cap:
            cap.counter("hits", 2)
            cap.counter("hits", 3)
        records = [r for r in cap.records if r["kind"] == "counter"]
        assert len(records) == 1
        assert records[0]["value"] == 5

    def test_attrs_partition_counter_buckets(self):
        with telemetry.capture() as cap:
            cap.counter("migrated", 4, dest=0, donor=1)
            cap.counter("migrated", 6, dest=1, donor=2)
            cap.counter("migrated", 1, dest=0, donor=1)
        buckets = {
            (r["attrs"]["dest"], r["attrs"]["donor"]): r["value"]
            for r in cap.records
        }
        assert buckets == {(0, 1): 5, (1, 2): 6}

    def test_gauge_keeps_last_value_and_aggregates(self):
        with telemetry.capture() as cap:
            cap.gauge("depth", 4)
            cap.gauge("depth", 9)
            cap.gauge("depth", 2)
        record = cap.records[0]
        assert record["value"] == 2
        assert record["attrs"]["max"] == 9
        assert record["attrs"]["min"] == 2
        assert record["attrs"]["count"] == 3

    def test_flush_resets_accumulators(self):
        with telemetry.capture() as cap:
            cap.counter("n", 1)
            cap.flush()
            cap.counter("n", 1)
        totals = [r["value"] for r in cap.records if r["name"] == "n"]
        assert totals == [1, 1]


class TestSchemaRoundTrip:
    def test_jsonl_file_round_trips_and_validates(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        configured = telemetry.configure(str(trace))
        try:
            schedule_pe_aware(MATRIX, DEFAULT_SERPENS)
            schedule_crhcs(MATRIX, DEFAULT_CHASON)
        finally:
            configured.close()
            telemetry.disable()
        count = validate_file(trace)
        assert count > 0
        records = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        kinds = {r["kind"] for r in records}
        assert {"span", "counter"} <= kinds
        names = {r["name"] for r in records}
        assert "schedule.pe_aware" in names
        assert "scheduler.crhcs.migrated" in names

    def test_every_capture_record_validates(self):
        with telemetry.capture() as cap:
            with cap.span("s", a=1):
                cap.counter("c", 2)
                cap.gauge("g", 3.5, unit="cycles")
        assert validate_records(cap.records) == len(cap.records) >= 3

    @pytest.mark.parametrize(
        "record",
        [
            "not a dict",
            {},
            {"run_id": "nothex", "seq": 0, "ts": 0.0, "kind": "span",
             "name": "a", "duration_s": 0.1},
            {"run_id": "0123456789ab", "seq": -1, "ts": 0.0,
             "kind": "span", "name": "a", "duration_s": 0.1},
            {"run_id": "0123456789ab", "seq": 0, "ts": 0.0,
             "kind": "bogus", "name": "a"},
            {"run_id": "0123456789ab", "seq": 0, "ts": 0.0,
             "kind": "span", "name": "a"},          # span w/o duration
            {"run_id": "0123456789ab", "seq": 0, "ts": 0.0,
             "kind": "counter", "name": "a"},       # counter w/o value
            {"run_id": "0123456789ab", "seq": 0, "ts": 0.0,
             "kind": "event", "name": "a", "extra_field": 1},
        ],
    )
    def test_malformed_records_are_rejected(self, record):
        with pytest.raises(TelemetryError):
            validate_record(record)


def _doubling_worker(value):
    t = telemetry.get()
    with t.span("test.work", value=value):
        t.counter("test.items", 1)
        t.counter("test.value_sum", value)
    return value * 2


class TestParallelMerge:
    def test_merge_is_ordered_by_spec_index(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "4")
        items = list(range(8))
        with telemetry.capture() as cap:
            results = run_over_specs(_doubling_worker, items)
        assert results == [v * 2 for v in items]
        spec_indices = [
            r["attrs"]["index"]
            for r in cap.records
            if r["name"].endswith("corpus.spec") and r["kind"] == "span"
        ]
        assert spec_indices == items
        # Merged records carry worker attribution and monotonic seqs.
        merged = [r for r in cap.records if "worker" in r]
        assert merged
        seqs = [r["seq"] for r in cap.records]
        assert seqs == sorted(seqs)
        assert validate_records(cap.records) == len(cap.records)

    def test_parallel_counter_totals_match_serial(self, monkeypatch):
        items = list(range(8))

        def totals(records):
            out = {}
            for record in records:
                if record["kind"] == "counter":
                    key = record["name"]
                    out[key] = out.get(key, 0) + record["value"]
            return out

        monkeypatch.setenv(WORKERS_ENV, "1")
        with telemetry.capture() as serial_cap:
            serial = run_over_specs(_doubling_worker, items)
        monkeypatch.setenv(WORKERS_ENV, "4")
        with telemetry.capture() as parallel_cap:
            parallel = run_over_specs(_doubling_worker, items)
        assert serial == parallel
        serial_totals = totals(serial_cap.records)
        parallel_totals = totals(parallel_cap.records)
        for name in ("test.items", "test.value_sum", "runner.specs"):
            assert serial_totals[name] == parallel_totals[name]

    def test_disabled_parallel_path_unchanged(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "2")
        assert run_over_specs(_doubling_worker, [1, 2, 3]) == [2, 4, 6]


class TestCacheCounters:
    def test_hits_misses_evictions_reach_telemetry(self):
        with telemetry.capture() as cap:
            cache = ScheduleCache(capacity=1)
            build = lambda: schedule_pe_aware(MATRIX, DEFAULT_SERPENS)
            cache.get_or_build(SPEC, DEFAULT_SERPENS, "a", build)
            cache.get_or_build(SPEC, DEFAULT_SERPENS, "a", build)  # hit
            cache.get_or_build(SPEC, DEFAULT_SERPENS, "b", build)  # evicts a
        totals = {}
        for record in cap.records:
            if record["kind"] == "counter" and record["name"].startswith(
                "cache."
            ):
                totals[record["name"]] = (
                    totals.get(record["name"], 0) + record["value"]
                )
        assert totals["cache.hits"] == cache.hits == 1
        assert totals["cache.misses"] == cache.misses == 2
        assert totals["cache.evictions"] == cache.evictions == 1

    def test_disk_loads_counted(self, tmp_path):
        writer = ScheduleCache(capacity=0, disk_dir=str(tmp_path))
        build = lambda: schedule_pe_aware(MATRIX, DEFAULT_SERPENS)
        writer.get_or_build(SPEC, DEFAULT_SERPENS, "pe_aware", build)
        with telemetry.capture() as cap:
            reader = ScheduleCache(capacity=0, disk_dir=str(tmp_path))
            reader.get_or_build(SPEC, DEFAULT_SERPENS, "pe_aware", build)
        names = {
            r["name"] for r in cap.records if r["kind"] == "counter"
        }
        assert "cache.disk_loads" in names
        assert reader.disk_loads == 1


class TestMigrationCounters:
    def test_pair_counters_fold_the_migration_report(self):
        report = MigrationReport()
        with telemetry.capture() as cap:
            schedule_crhcs(MATRIX, DEFAULT_CHASON, report=report)
        pair_total = sum(
            r["value"]
            for r in cap.records
            if r["name"] == "scheduler.crhcs.migrated_pair"
        )
        migrated_total = sum(
            r["value"]
            for r in cap.records
            if r["name"] == "scheduler.crhcs.migrated"
        )
        assert pair_total == report.migrated == migrated_total
        assert report.migrated == sum(report.pair_counts.values())
        prefix = sum(
            r["value"] for r in cap.records
            if r["name"] == "scheduler.crhcs.prefix_slots"
        )
        walk = sum(
            r["value"] for r in cap.records
            if r["name"] == "scheduler.crhcs.walk_slots"
        )
        assert prefix + walk == report.migrated


class TestWarnOnce:
    def test_invalid_workers_env_warns_once(self, monkeypatch, caplog):
        monkeypatch.setenv(WORKERS_ENV, "eight")
        with caplog.at_level(logging.WARNING, logger="repro.telemetry"):
            assert corpus_worker_count() == 1
            assert corpus_worker_count() == 1
        warnings = [
            r for r in caplog.records if "REPRO_CORPUS_WORKERS" in r.message
        ]
        assert len(warnings) == 1
        assert "'eight'" in warnings[0].message
        assert "serial" in warnings[0].message

    def test_warning_counted_in_telemetry(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "garbage")
        with telemetry.capture() as cap:
            corpus_worker_count()
        counters = [
            r for r in cap.records
            if r["kind"] == "counter" and r["name"] == "telemetry.warnings"
        ]
        assert len(counters) == 1
        assert counters[0]["attrs"]["key"] == "invalid_corpus_workers"


class TestTraceRenderLimit:
    def test_default_limit_names_the_override(self, monkeypatch):
        monkeypatch.delenv(TRACE_MAX_ENV, raising=False)
        trace = ScheduleTrace(timelines={}, cycles=600)
        with pytest.raises(SimulationError) as excinfo:
            trace.render()
        message = str(excinfo.value)
        assert "512" in message
        assert TRACE_MAX_ENV in message
        assert "max_cycles" in message

    def test_parameter_override(self):
        trace = ScheduleTrace(timelines={}, cycles=600)
        assert trace.render(max_cycles=1000) == ""

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(TRACE_MAX_ENV, "1000")
        trace = ScheduleTrace(timelines={}, cycles=600)
        assert trace.render() == ""

    def test_invalid_env_warns_and_keeps_default(self, monkeypatch, caplog):
        monkeypatch.setenv(TRACE_MAX_ENV, "lots")
        trace = ScheduleTrace(timelines={}, cycles=600)
        with caplog.at_level(logging.WARNING, logger="repro.telemetry"):
            with pytest.raises(SimulationError):
                trace.render()
        assert any(TRACE_MAX_ENV in r.message for r in caplog.records)


class TestSummarize:
    def test_report_renders_spans_counters_gauges(self):
        with telemetry.capture() as cap:
            with cap.span("corpus.run"):
                with cap.span("corpus.spec", index=0):
                    cap.counter("cache.hits", 3)
            cap.gauge("runner.specs_per_s", 12.5)
        report = summarize_records(cap.records)
        assert "corpus.run" in report
        assert "corpus.spec" in report
        assert "cache.hits" in report
        assert "runner.specs_per_s" in report

    def test_counter_totals_sum_across_flushes(self):
        with telemetry.capture() as cap:
            cap.counter("n", 2)
            cap.flush()
            cap.counter("n", 5)
        report = summarize_records(cap.records)
        assert "7" in report


class TestManifest:
    def test_manifest_written_alongside_bench_json(self, tmp_path):
        from repro.telemetry import write_manifest

        bench = tmp_path / "BENCH_test.json"
        bench.write_text("{}\n")
        path = write_manifest(bench, workers=3, extra={"bench": "test"})
        assert path.name == "BENCH_test.manifest.json"
        manifest = json.loads(path.read_text())
        assert manifest["workers"] == 3
        assert manifest["bench"] == "test"
        assert manifest["python"]
        assert manifest["numpy"]
        assert len(manifest["config_hash"]) == 16


class TestCli:
    def test_telemetry_flag_and_summarize_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "cli.jsonl"
        assert main(
            ["--telemetry", str(trace), "schedule", "CollegeMsg",
             "--scheme", "pe_aware"]
        ) == 0
        assert trace.exists()
        assert validate_file(trace) > 0
        assert main(["telemetry", "summarize", str(trace),
                     "--validate"]) == 0
        out = capsys.readouterr().out
        assert "schedule.pe_aware" in out
        assert "validate against the event schema" in out

    def test_schema_subcommand_prints_json_schema(self, capsys):
        from repro.cli import main

        assert main(["telemetry", "schema"]) == 0
        schema = json.loads(capsys.readouterr().out)
        assert schema["title"] == "repro telemetry event record"
