"""Multi-tenant QoS tests: fair queue, policy knobs, autoscaler.

The backbone is the *single-tenant parity* suite: with one tenant at the
default policy, :class:`~repro.tenancy.fair_queue.FairAdmissionQueue`
must reproduce :class:`~repro.serving.queue.AdmissionQueue` decision for
decision — pinned both by replaying the admission-policy cases from
``test_serving.py`` and by a randomized (and a hypothesis-driven)
differential that runs the same operation sequence through both queues.

On top of that: deficit-round-robin weight convergence and
starvation-freedom (hypothesis), per-tenant quotas, flood isolation,
SLO-class shedding under burn pressure, engine/session tenant plumbing,
and the autoscaler's hysteresis loop driven by synthetic signals.
"""

from __future__ import annotations

import dataclasses
import json
import math
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.cluster import Autoscaler, AutoscaleSignals, Cluster
from repro.serving import (
    STATUS_OK,
    STATUS_REJECTED,
    AdmissionQueue,
    ServingEngine,
    SpMVRequest,
    request_from_json,
)
from repro.errors import ConfigError
from repro.matrices.generators import uniform_random
from repro.sessions import SessionManager
from repro.tenancy import (
    DEFAULT_TENANT,
    FairAdmissionQueue,
    TenantPolicy,
    normalize_tenant,
    parse_tenant_weights,
)

MATRIX = uniform_random(48, 48, 260, seed=0)


@pytest.fixture(autouse=True)
def _fresh_warnings():
    telemetry.reset_warnings()
    yield
    telemetry.reset_warnings()


class _Item:
    """Minimal queue entry (mirrors test_serving's) plus tenant/class."""

    def __init__(self, seq, priority=0, deadline_at=None, tenant=None,
                 slo_class="interactive"):
        self.seq = seq
        self.priority = priority
        self.deadline_at = deadline_at
        self.tenant = tenant
        self.slo_class = slo_class

    def expired_at(self, now):
        return self.deadline_at is not None and now > self.deadline_at

    def __repr__(self):
        return f"_Item(seq={self.seq}, pri={self.priority})"


class TestSingleTenantParity:
    """One tenant, default policy → byte-for-byte the global queue.

    These replay the ``TestAdmissionQueue`` policy cases from
    ``test_serving.py`` against the fair queue: the differential pin
    that the tenancy layer does not change the single-tenant path.
    """

    def test_priority_order_fifo_within_level(self):
        queue = FairAdmissionQueue(capacity=8)
        items = [_Item(seq=0), _Item(seq=1, priority=5), _Item(seq=2),
                 _Item(seq=3, priority=5)]
        for item in items:
            assert queue.push(item, now=0.0) == (True, None, [])
        popped = [queue.pop(timeout=0)[0] for _ in range(4)]
        assert [item.seq for item in popped] == [1, 3, 0, 2]

    def test_full_queue_rejects_equal_priority(self):
        queue = FairAdmissionQueue(capacity=2)
        assert queue.push(_Item(seq=0), now=0.0)[0]
        assert queue.push(_Item(seq=1), now=0.0)[0]
        admitted, displaced, expired = queue.push(_Item(seq=2), now=0.0)
        assert (admitted, displaced, expired) == (False, None, [])
        assert len(queue) == 2
        assert queue.shed == {DEFAULT_TENANT: 1}

    def test_higher_priority_displaces_the_tail(self):
        queue = FairAdmissionQueue(capacity=2)
        low = _Item(seq=0)
        queue.push(low, now=0.0)
        queue.push(_Item(seq=1, priority=3), now=0.0)
        admitted, displaced, _ = queue.push(
            _Item(seq=2, priority=9), now=0.0
        )
        assert admitted and displaced is low
        assert [i.priority for i, _ in
                [queue.pop(timeout=0) for _ in range(2)]] == [9, 3]

    def test_displacement_tie_evicts_newest_of_equals(self):
        queue = FairAdmissionQueue(capacity=3)
        equals = [_Item(seq=0), _Item(seq=1), _Item(seq=2)]
        for item in equals:
            assert queue.push(item, now=0.0) == (True, None, [])
        admitted, displaced, expired = queue.push(
            _Item(seq=3, priority=5), now=0.0
        )
        assert admitted and expired == []
        assert displaced is equals[2]
        popped = [queue.pop(timeout=0)[0] for _ in range(3)]
        assert [item.seq for item in popped] == [3, 0, 1]

    def test_expired_entries_are_purged_to_make_room(self):
        queue = FairAdmissionQueue(capacity=1)
        stale = _Item(seq=0, deadline_at=1.0)
        queue.push(stale, now=0.0)
        admitted, displaced, expired = queue.push(_Item(seq=1), now=2.0)
        assert admitted and displaced is None and expired == [stale]

    def test_pop_group_takes_matching_up_to_limit(self):
        queue = FairAdmissionQueue(capacity=8)
        items = [_Item(seq=i) for i in range(5)]
        for item in items:
            queue.push(item, now=0.0)
        taken = queue.pop_group(lambda i: i.seq % 2 == 0, limit=2)
        assert [i.seq for i in taken] == [0, 2]
        assert len(queue) == 3

    def test_reprioritize_moves_a_queued_entry_forward(self):
        queue = FairAdmissionQueue(capacity=4)
        first, second = _Item(seq=0), _Item(seq=1)
        queue.push(first, now=0.0)
        queue.push(second, now=0.0)
        assert queue.reprioritize(second, 7)
        assert queue.pop(timeout=0)[0] is second
        assert not queue.reprioritize(second, 9)

    def _differential(self, ops):
        """Run one op sequence through both queues; outcomes must match."""
        legacy = AdmissionQueue(capacity=4)
        fair = FairAdmissionQueue(capacity=4)
        mirror = {}  # seq → (legacy item, fair item)
        for op in ops:
            if op[0] == "push":
                _tag, seq, priority, deadline_at, now = op
                a = _Item(seq, priority, deadline_at)
                b = _Item(seq, priority, deadline_at)
                mirror[seq] = (a, b)
                res_a = legacy.push(a, now=now)
                res_b = fair.push(b, now=now)
                assert res_a[0] == res_b[0], op
                assert (res_a[1].seq if res_a[1] else None) == \
                       (res_b[1].seq if res_b[1] else None), op
                assert [i.seq for i in res_a[2]] == \
                       [i.seq for i in res_b[2]], op
            else:
                entry_a, expired_a = legacy.pop(timeout=0)
                entry_b, expired_b = fair.pop(timeout=0)
                assert (entry_a.seq if entry_a else None) == \
                       (entry_b.seq if entry_b else None), op
                assert [i.seq for i in expired_a] == \
                       [i.seq for i in expired_b], op
            assert len(legacy) == len(fair)

    def test_randomized_differential(self):
        rng = random.Random(1234)
        for _trial in range(50):
            seq = 0
            now = 0.0
            ops = []
            for _step in range(40):
                now += rng.random()
                if rng.random() < 0.6:
                    deadline = (
                        now + rng.uniform(-0.5, 2.0)
                        if rng.random() < 0.3 else None
                    )
                    ops.append(("push", seq, rng.randrange(4),
                                deadline, now))
                    seq += 1
                else:
                    ops.append(("pop",))
            self._differential(ops)

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(
        st.one_of(
            st.tuples(st.integers(0, 3), st.booleans()),
            st.none(),
        ),
        min_size=1, max_size=40,
    ))
    def test_hypothesis_differential(self, script):
        """Any push/pop interleaving: both queues decide identically."""
        seq = 0
        now = 0.0
        ops = []
        for step in script:
            now += 0.25
            if step is None:
                ops.append(("pop",))
            else:
                priority, with_deadline = step
                deadline = now + (priority - 1.0) if with_deadline else None
                ops.append(("push", seq, priority, deadline, now))
                seq += 1
        self._differential(ops)


class TestDeficitRoundRobin:
    def test_weighted_interleave(self):
        policy = TenantPolicy(weights={"a": 3.0, "b": 1.0})
        queue = FairAdmissionQueue(capacity=64, policy=policy)
        for i in range(16):
            queue.push(_Item(seq=2 * i, tenant="a"), now=0.0)
            queue.push(_Item(seq=2 * i + 1, tenant="b"), now=0.0)
        order = [queue.pop(timeout=0)[0].tenant for _ in range(16)]
        assert order == ["a", "a", "a", "b"] * 4
        assert queue.served_counts() == {"a": 12, "b": 4}

    def test_fractional_weight_throttles_but_serves(self):
        policy = TenantPolicy(weights={"slow": 0.25})
        queue = FairAdmissionQueue(capacity=64, policy=policy)
        for i in range(8):
            queue.push(_Item(seq=2 * i, tenant="fast"), now=0.0)
            queue.push(_Item(seq=2 * i + 1, tenant="slow"), now=0.0)
        order = [queue.pop(timeout=0)[0].tenant for _ in range(10)]
        # One "slow" dispatch per four rounds; never starved outright.
        assert order.count("slow") == 2
        assert order.count("fast") == 8

    def test_new_tenant_joins_end_of_round_without_burst(self):
        queue = FairAdmissionQueue(capacity=64)
        for i in range(6):
            queue.push(_Item(seq=i, tenant="standing"), now=0.0)
        assert queue.pop(timeout=0)[0].tenant == "standing"
        for i in range(3):
            queue.push(_Item(seq=10 + i, tenant="late"), now=0.0)
        # "standing" already spent this round's quantum, so "late" gets
        # its first turn immediately — but only one dispatch per round,
        # never a catch-up burst past the standing tenant.
        order = [queue.pop(timeout=0)[0].tenant for _ in range(6)]
        assert order == ["late", "standing", "late", "standing",
                        "late", "standing"]

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        weights=st.lists(
            st.floats(min_value=0.5, max_value=4.0,
                      allow_nan=False, allow_infinity=False),
            min_size=2, max_size=4,
        ),
    )
    def test_convergence_and_no_starvation(self, weights):
        """Served shares track weights; no non-empty tenant starves.

        Every tenant stays non-empty for the whole window, so deficit
        round-robin theory gives a hard bound: after any prefix, each
        tenant's round count differs by ≤ 1 and its served count is
        within its weight + 1 of (rounds × weight).
        """
        tenants = [f"t{i}" for i in range(len(weights))]
        policy = TenantPolicy(weights=dict(zip(tenants, weights)))
        queue = FairAdmissionQueue(capacity=4096, policy=policy)
        pops = 25 * len(tenants)
        seq = 0
        for _ in range(pops):  # nobody empties during the window
            for tenant in tenants:
                queue.push(_Item(seq=seq, tenant=tenant), now=0.0)
                seq += 1
        order = [queue.pop(timeout=0)[0].tenant for _ in range(pops)]
        served = {t: order.count(t) for t in tenants}
        # Starvation-freedom: every tenant was dispatched.
        assert all(served[t] >= 1 for t in tenants)
        # Convergence: per-weight normalized service within the DRR
        # deficit bound of each other (rounds differ by at most one,
        # credit remainders by less than one dispatch).
        normalized = {
            t: served[t] / policy.weight(t) for t in tenants
        }
        slack = {
            t: 1.0 + 1.0 / policy.weight(t) for t in tenants
        }
        for a in tenants:
            for b in tenants:
                assert (normalized[a] - normalized[b]
                        <= 1.0 + slack[a] + slack[b]), (served, weights)
        # Conservation: the remaining entries are exactly the unpopped.
        assert len(queue) == pops * len(tenants) - pops


class TestQuotaAndFloodIsolation:
    def test_quota_caps_one_tenant(self):
        policy = TenantPolicy(quota_fraction=0.5)
        queue = FairAdmissionQueue(capacity=10, policy=policy)
        admitted = [
            queue.push(_Item(seq=i, tenant="greedy"), now=0.0)[0]
            for i in range(8)
        ]
        assert admitted == [True] * 5 + [False] * 3
        assert queue.tenant_depth("greedy") == 5
        assert queue.shed == {"greedy": 3}
        # Another tenant still has room under the global capacity.
        assert queue.push(_Item(seq=99, tenant="polite"), now=0.0)[0]

    def test_quota_always_leaves_one_slot(self):
        policy = TenantPolicy(quota_fraction=0.001)
        queue = FairAdmissionQueue(capacity=8, policy=policy)
        assert queue.tenant_quota() == 1
        assert queue.push(_Item(seq=0, tenant="x"), now=0.0)[0]
        assert not queue.push(_Item(seq=1, tenant="x"), now=0.0)[0]

    def test_flood_tenant_absorbs_global_overload(self):
        """A full queue displaces the over-share tenant, not the victim."""
        queue = FairAdmissionQueue(capacity=6)
        for i in range(6):
            queue.push(_Item(seq=i, tenant="flood"), now=0.0)
        admitted, displaced, _ = queue.push(
            _Item(seq=100, tenant="victim"), now=0.0
        )
        assert admitted
        assert displaced is not None and displaced.tenant == "flood"
        assert queue.shed == {"flood": 1}
        assert queue.tenant_depth("victim") == 1

    def test_flood_cannot_displace_the_minority_share(self):
        queue = FairAdmissionQueue(capacity=4)
        queue.push(_Item(seq=0, tenant="victim"), now=0.0)
        for i in range(1, 4):
            queue.push(_Item(seq=i, tenant="flood"), now=0.0)
        # Equal-priority flood push: its own tenant is the over-share
        # victim and the within-tenant rule rejects the newcomer.
        admitted, displaced, _ = queue.push(
            _Item(seq=4, tenant="flood"), now=0.0
        )
        assert not admitted and displaced is None
        assert queue.tenant_depth("victim") == 1

    def test_batch_sheds_before_interactive_under_pressure(self):
        hot = {"value": False}
        queue = FairAdmissionQueue(
            capacity=3, pressure=lambda: hot["value"]
        )
        batch = _Item(seq=0, tenant="flood", slo_class="batch")
        queue.push(batch, now=0.0)
        queue.push(_Item(seq=1, tenant="flood"), now=0.0)
        queue.push(_Item(seq=2, tenant="flood"), now=0.0)
        hot["value"] = True
        admitted, displaced, _ = queue.push(
            _Item(seq=3, tenant="victim"), now=0.0
        )
        # Cold policy would evict seq=2 (newest); hot evicts the batch
        # entry even though it queued first.
        assert admitted and displaced is batch

    def test_cold_shedding_ignores_slo_class(self):
        queue = FairAdmissionQueue(capacity=3, pressure=lambda: False)
        queue.push(_Item(seq=0, tenant="flood", slo_class="batch"), now=0.0)
        queue.push(_Item(seq=1, tenant="flood"), now=0.0)
        newest = _Item(seq=2, tenant="flood")
        queue.push(newest, now=0.0)
        _admitted, displaced, _ = queue.push(
            _Item(seq=3, tenant="victim"), now=0.0
        )
        assert displaced is newest


class TestRequestTenantField:
    def test_default_tenant_when_absent(self):
        request = request_from_json('{"matrix": "CollegeMsg"}')
        assert request.tenant == DEFAULT_TENANT

    def test_tenant_round_trips_and_normalizes(self):
        request = request_from_json(json.dumps(
            {"matrix": "CollegeMsg", "tenant": " alice "}
        ))
        assert request.tenant == "alice"
        assert request_from_json(json.dumps(
            {"matrix": "CollegeMsg", "tenant": ""}
        )).tenant == DEFAULT_TENANT

    def test_non_string_tenant_is_a_config_error(self):
        with pytest.raises(ConfigError, match="tenant"):
            request_from_json(json.dumps(
                {"matrix": "CollegeMsg", "tenant": 7}
            ))

    def test_normalize_tenant(self):
        assert normalize_tenant(None) == DEFAULT_TENANT
        assert normalize_tenant("  ") == DEFAULT_TENANT
        assert normalize_tenant(" bob ") == "bob"

    def test_parse_weights_reads_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_TENANT_WEIGHTS", "a:2,b:1")
        assert parse_tenant_weights() == {"a": 2.0, "b": 1.0}


class _GatedRunner:
    """Blocks executions until released (see test_serving.py)."""

    def __init__(self):
        import threading

        from repro.pipeline.runner import PipelineRunner

        self.started = threading.Event()
        self.release = threading.Event()
        self._runner = PipelineRunner()

    def analyze(self, source, spec, config, **kwargs):
        self.started.set()
        assert self.release.wait(10.0), "test never released the runner"
        return self._runner.analyze(source, spec, config, **kwargs)


class TestEngineTenancy:
    #: Distinct matrices so flood requests never coalesce.
    SOURCES = [uniform_random(32, 32, 120, seed=s) for s in range(8)]

    def _request(self, request_id, tenant=None, source=None, **kwargs):
        return SpMVRequest(
            request_id=request_id,
            source=source if source is not None else MATRIX,
            scheme="crhcs", tenant=normalize_tenant(tenant), **kwargs
        )

    def test_responses_identical_across_tenants(self):
        """The tenant id must stay out of the work fingerprint: the
        same work answers byte-identically whoever submits it."""
        engine = ServingEngine(workers=1)
        engine.start()
        try:
            first = engine.submit_wait(self._request(1, tenant="alice"),
                                       timeout=30.0)
            second = engine.submit_wait(self._request(2, tenant="bob"),
                                        timeout=30.0)
        finally:
            engine.shutdown(drain=True)
        assert first.status == second.status == STATUS_OK
        assert json.dumps(dataclasses.asdict(first.report),
                          sort_keys=True) == \
               json.dumps(dataclasses.asdict(second.report), sort_keys=True)
        summary = engine.tenant_summary()
        assert summary["alice"]["completed"] == 1
        assert summary["bob"]["completed"] == 1

    def test_flood_tenant_absorbs_quota_shedding(self):
        policy = TenantPolicy(quota_fraction=0.25)
        engine = ServingEngine(workers=1, queue_capacity=8,
                               tenancy=policy)
        gate = _GatedRunner()
        engine.runner = gate
        engine.start()
        try:
            # The first request occupies the (gated) worker; the rest
            # queue against the flood tenant's quota of 2 slots.
            tickets = [engine.submit(self._request(
                0, tenant="flood", source=self.SOURCES[0]
            ))]
            assert gate.started.wait(10.0)  # worker holds request 0
            tickets += [
                engine.submit(self._request(
                    i, tenant="flood", source=self.SOURCES[i]
                ))
                for i in range(1, 6)
            ]
            rejected = [
                t.result(0.1) for t in tickets
                if t.done() and t.result(0.1).status == STATUS_REJECTED
            ]
            assert len(rejected) == 3  # 1 executing + 2 queued (quota)
            assert all("quota" in r.detail and "'flood'" in r.detail
                       for r in rejected)
            # The victim tenant is untouched by the flood's quota.
            victim = engine.submit(self._request(
                50, tenant="victim", source=self.SOURCES[7]
            ))
            assert not victim.done()
            summary = engine.tenant_summary()
            assert summary["flood"]["shed"] == 3
            assert summary["victim"]["accepted"] == 1
        finally:
            gate.release.set()
            engine.shutdown(drain=True)


class TestSessionTenancy:
    def test_session_requests_inherit_the_tenant(self):
        with ServingEngine() as engine:
            manager = SessionManager(engine=engine)
            with manager.open(
                MATRIX, solver="power_iteration",
                max_iterations=2, tenant="team-ml",
            ) as session:
                assert session.spec.tenant == "team-ml"
                session.run()
            summary = engine.tenant_summary()
            assert summary["team-ml"]["completed"] >= 1

    def test_sessions_default_to_the_default_tenant(self):
        with ServingEngine() as engine:
            manager = SessionManager(engine=engine)
            with manager.open(MATRIX, max_iterations=1) as session:
                assert session.spec.tenant == DEFAULT_TENANT


class _FakeCluster:
    """Device-count ledger standing in for a Cluster in step tests."""

    def __init__(self, alive=2):
        self.alive = alive
        self.added = []
        self.removed = []
        self.devices = {}

    def add_device(self):
        self.alive += 1
        device_id = f"dev{90 + len(self.added)}"
        self.added.append(device_id)
        return device_id

    def remove_device(self, device_id, drain=True, reason="removed"):
        self.alive -= 1
        self.removed.append((device_id, drain, reason))

    def alive_count(self):
        return self.alive


class TestAutoscaler:
    def _signals(self, alive, depth, ewma=0.0):
        return AutoscaleSignals(
            alive=alive, mean_depth=depth,
            max_depth=int(depth), max_ewma_ms=ewma,
        )

    def _autoscaler(self, cluster, **kwargs):
        kwargs.setdefault("min_devices", 1)
        kwargs.setdefault("max_devices", 4)
        kwargs.setdefault("up_depth", 8.0)
        kwargs.setdefault("down_depth", 1.0)
        return Autoscaler(cluster, **kwargs)

    def test_scale_up_needs_a_streak(self):
        fake = _FakeCluster(alive=2)
        scaler = self._autoscaler(fake)
        assert scaler.step(self._signals(2, 20.0)) is None  # streak 1
        assert scaler.step(self._signals(2, 20.0)) == "up"  # streak 2
        assert fake.alive == 3

    def test_one_cool_sample_resets_the_streak(self):
        fake = _FakeCluster(alive=2)
        scaler = self._autoscaler(fake)
        assert scaler.step(self._signals(2, 20.0)) is None
        assert scaler.step(self._signals(2, 2.0)) is None  # resets
        assert scaler.step(self._signals(2, 20.0)) is None
        assert scaler.step(self._signals(2, 20.0)) == "up"

    def test_cooldown_blocks_consecutive_actions(self):
        fake = _FakeCluster(alive=2)
        scaler = self._autoscaler(fake, cooldown_steps=2)
        scaler.step(self._signals(2, 20.0))
        assert scaler.step(self._signals(2, 20.0)) == "up"
        # Two cooldown evaluations ignore the still-hot signal.
        assert scaler.step(self._signals(3, 20.0)) is None
        assert scaler.step(self._signals(3, 20.0)) is None
        assert scaler.step(self._signals(3, 20.0)) is None  # streak 1
        assert scaler.step(self._signals(3, 20.0)) == "up"

    def test_max_devices_is_a_hard_ceiling(self):
        fake = _FakeCluster(alive=4)
        scaler = self._autoscaler(fake, max_devices=4)
        for _ in range(6):
            assert scaler.step(self._signals(4, 50.0)) is None
        assert fake.added == []

    def test_scale_down_needs_the_longer_streak(self):
        fake = _FakeCluster(alive=3)
        fake.devices = {}
        scaler = self._autoscaler(fake, down_streak=4)
        for _ in range(3):
            assert scaler.step(self._signals(3, 0.0)) is None
        # Fourth idle evaluation scales down — but _pick_drain consults
        # cluster.devices, so give the fake a drainable fleet first.
        result = scaler.step(self._signals(3, 0.0))
        assert result is None  # no drainable device in the fake
        assert scaler.stats["steps"] == 4

    def test_below_min_recovers_immediately(self):
        fake = _FakeCluster(alive=0)
        scaler = self._autoscaler(fake, min_devices=2)
        assert scaler.step(self._signals(0, 0.0)) == "up"
        assert scaler.step(self._signals(1, 0.0)) == "up"
        assert fake.alive == 2

    def test_latency_trigger_scales_up(self):
        fake = _FakeCluster(alive=2)
        scaler = self._autoscaler(fake, up_latency_ms=50.0)
        assert scaler.step(self._signals(2, 0.0, ewma=120.0)) is None
        assert scaler.step(self._signals(2, 0.0, ewma=120.0)) == "up"

    def test_integration_add_and_drain_real_devices(self):
        cluster = Cluster(devices=2, replicas=1)
        cluster.start()
        try:
            scaler = Autoscaler(cluster, min_devices=1, max_devices=4,
                                up_streak=1, down_streak=1,
                                cooldown_steps=0)
            hot = self._signals(2, 100.0)
            assert scaler.step(hot) == "up"
            assert cluster.alive_count() == 3
            assert "dev2" in cluster.devices  # fresh id, never reused
            idle = self._signals(3, 0.0)
            assert scaler.step(idle) == "down"
            assert cluster.alive_count() == 2
            assert scaler.snapshot()["ups"] == 1
            assert scaler.snapshot()["downs"] == 1
            assert cluster.stats["added_devices"] == 1
        finally:
            cluster.shutdown(drain=True)

    def test_pick_drain_prefers_shallow_then_newest(self):
        cluster = Cluster(devices=3, replicas=1)
        try:
            scaler = Autoscaler(cluster, min_devices=1)
            # All queues empty → tie on depth → newest id drains.
            assert scaler._pick_drain() == "dev2"
        finally:
            cluster.shutdown(drain=False)

    def test_snapshot_reports_bounds_and_actions(self):
        fake = _FakeCluster(alive=1)
        scaler = self._autoscaler(fake, min_devices=1, max_devices=3)
        scaler.step(self._signals(1, 20.0))
        scaler.step(self._signals(1, 20.0))
        snap = scaler.snapshot()
        assert snap["min_devices"] == 1 and snap["max_devices"] == 3
        assert snap["ups"] == 1 and snap["downs"] == 0
        assert snap["actions"] == [("up", "dev90")]


class TestClusterTenantRollup:
    def test_status_includes_tenant_summary(self):
        cluster = Cluster(devices=2, replicas=1)
        cluster.start()
        try:
            request = SpMVRequest(
                request_id=1, source=MATRIX, scheme="crhcs",
                tenant="acme",
            )
            response = cluster.submit_wait(request, timeout=60.0)
            assert response.ok
            tenants = cluster.status()["tenants"]
            assert tenants["acme"]["completed"] == 1
        finally:
            cluster.shutdown(drain=True)
