"""Tracing, histogram, and SLO burn-rate tests (the observability PR).

The centrepiece is the trace-tree completeness property test: a
fault-injected cluster run (crash + slow device, hedging enabled, ~70 %
duplicate requests so coalescing fires) must leave every fulfilled
response carrying a ``trace_id`` whose records form a *single complete
causal tree* — exactly one root span, every ``parent_span_id`` resolving
to a span of the same trace — with ``trace.link`` events tying coalesced
followers and hedged duplicates to their peers.  The exported Chrome
trace of that run must validate structurally.

Alongside: histogram merge algebra (associative, commutative, identity)
and quantile accuracy within one log bucket of the exact percentiles;
burn-rate windows under a fake clock; the tolerant JSONL loader; the
``REPRO_TRACE_SAMPLE`` knob; and the new CLI surfaces (``telemetry
export``, ``repro top``).
"""

from __future__ import annotations

import json
import logging

import pytest

from repro import telemetry
from repro.cli import main
from repro.cluster import Cluster, parse_fault_plan
from repro.knobs import knob
from repro.matrices.generators import uniform_random
from repro.serving import ServingEngine, SpMVRequest
from repro.serving.slo import (
    BURN_WINDOWS_S,
    BurnRateMonitor,
    DEFAULT_SLOS,
    LatencyRecorder,
    classify_request,
)
from repro.telemetry import tracing
from repro.telemetry.hist import (
    GROWTH,
    Histogram,
    bucket_index,
    bucket_lower,
    bucket_upper,
    empty_snapshot,
    merge,
    merge_all,
    quantile,
)
from repro.telemetry.export import (
    to_chrome_trace,
    to_prometheus,
    validate_chrome_file,
    write_chrome,
)
from repro.telemetry.manifest import config_hash
from repro.telemetry.schema import (
    load_trace_tolerant,
    validate_file,
    validate_record,
)
from repro.telemetry.summarize import percentile, render_top
from repro.errors import TelemetryError

#: Small in-memory matrices keep the cluster property test sub-second.
MATRICES = [uniform_random(48, 48, 260, seed=seed) for seed in range(4)]

#: The fault plan of the property run: dev1 crashes after two requests
#: (forcing failover + removal), dev2 answers slowly half the time
#: (outlasting the 5 ms hedge threshold, forcing hedges).
FAULT_PLAN = "crash:1:after=2,slow:2:ms=10:p=0.5,seed=11"


@pytest.fixture(autouse=True)
def _clean_state(monkeypatch):
    monkeypatch.delenv(tracing.TRACE_SAMPLE_ENV, raising=False)
    telemetry.disable()
    telemetry.reset_warnings()
    yield
    telemetry.disable()
    telemetry.reset_warnings()


# -- trace context plumbing --------------------------------------------------


class TestTraceContext:
    def test_child_keeps_trace_id(self):
        root = tracing.start_trace()
        child = root.child("00000000000a")
        assert child.trace_id == root.trace_id
        assert child.span_id == "00000000000a"
        assert root.span_id != child.span_id

    def test_scope_installs_and_restores(self):
        context = tracing.start_trace()
        assert tracing.current() is None
        with tracing.scope(context) as active:
            assert active is context
            assert tracing.current() is context
        assert tracing.current() is None

    def test_scope_none_is_a_no_op(self):
        outer = tracing.start_trace()
        with tracing.scope(outer):
            with tracing.scope(None):
                assert tracing.current() is outer

    def test_disabled_telemetry_never_traces(self):
        assert tracing.maybe_start_trace(7) is None

    def test_enabled_telemetry_traces_by_default(self):
        with telemetry.capture():
            context = tracing.maybe_start_trace(7)
            assert context is not None
            assert len(context.trace_id) == 16

    def test_spans_chain_through_contextvars(self):
        with telemetry.capture() as cap:
            context = tracing.start_trace()
            with tracing.scope(context):
                with telemetry.get().span("outer"):
                    with telemetry.get().span("inner"):
                        pass
        spans = [r for r in cap.records if r["kind"] == "span"]
        by_name = {r["name"].rsplit("/", 1)[-1]: r for r in spans}
        assert by_name["outer"]["parent_span_id"] == context.span_id
        assert (by_name["inner"]["parent_span_id"]
                == by_name["outer"]["span_id"])
        assert {r["trace_id"] for r in spans} == {context.trace_id}
        for record in spans:
            validate_record(record)


class TestTraceSampleKnob:
    def test_invalid_sample_warns_once_and_defaults(
        self, monkeypatch, caplog
    ):
        monkeypatch.setenv(tracing.TRACE_SAMPLE_ENV, "most of them")
        with caplog.at_level(logging.WARNING):
            assert tracing.resolve_trace_sample() == 1.0
            assert tracing.resolve_trace_sample() == 1.0
        assert caplog.text.count("REPRO_TRACE_SAMPLE") == 1

    def test_non_finite_sample_warns_and_defaults(self, monkeypatch):
        monkeypatch.setenv(tracing.TRACE_SAMPLE_ENV, "nan")
        assert tracing.resolve_trace_sample() == 1.0

    def test_out_of_range_sample_clamps(self, monkeypatch):
        monkeypatch.setenv(tracing.TRACE_SAMPLE_ENV, "5")
        assert tracing.resolve_trace_sample() == 1.0
        monkeypatch.setenv(tracing.TRACE_SAMPLE_ENV, "-0.5")
        assert tracing.resolve_trace_sample() == 0.0

    def test_sample_zero_never_starts(self, monkeypatch):
        monkeypatch.setenv(tracing.TRACE_SAMPLE_ENV, "0")
        with telemetry.capture():
            assert tracing.maybe_start_trace(3) is None

    def test_draw_is_deterministic_in_request_id(self):
        assert tracing.sample_draw(41) == tracing.sample_draw(41)
        draws = {tracing.sample_draw(i) for i in range(64)}
        assert all(0.0 <= d < 1.0 for d in draws)
        assert len(draws) > 32  # spreads, not constant

    def test_tracing_knobs_registered(self):
        for name in ("REPRO_TRACE_SAMPLE", "REPRO_TRACE_CHROME",
                     "REPRO_PROM_FILE"):
            assert knob(name).subsystem == "telemetry"


# -- histograms --------------------------------------------------------------


def _filled(values) -> Histogram:
    hist = Histogram()
    for value in values:
        hist.record(value)
    return hist


class TestHistogram:
    def test_merge_is_associative_and_commutative(self):
        parts = [
            _filled([0.0, 0.4, 1.7, 52.0, 1234.5]).snapshot(),
            _filled([0.02, 3.3, 3.4, 980.0]).snapshot(),
            _filled([7.0, 7.1, 7.2, 0.0]).snapshot(),
        ]
        a, b, c = parts
        assert merge(merge(a, b), c) == merge(a, merge(b, c))
        assert merge(a, b) == merge(b, a)
        assert merge_all(parts) == merge(merge(a, b), c)

    def test_empty_snapshot_is_merge_identity(self):
        snap = _filled([0.5, 9.0, 120.0]).snapshot()
        assert merge(snap, empty_snapshot()) == snap
        assert merge(empty_snapshot(), snap) == snap

    def test_quantiles_within_one_bucket_of_exact(self):
        values = [0.37 * i + 0.05 for i in range(1, 200)]
        snap = _filled(values).snapshot()
        for q in (50.0, 95.0, 99.0):
            exact = percentile(values, q)
            approx = quantile(snap, q)
            index = bucket_index(exact)
            width = bucket_upper(index) - bucket_lower(index)
            assert abs(approx - exact) <= width + 1e-9, (
                f"p{q}: {approx} vs exact {exact} (bucket width {width})"
            )

    def test_quantile_clamped_to_observed_range(self):
        snap = _filled([5.0, 5.0, 5.0]).snapshot()
        assert quantile(snap, 0.0) >= 5.0 * (1 - (GROWTH - 1))
        assert quantile(snap, 100.0) <= 5.0

    def test_latency_recorder_hist_agrees_with_exact(self):
        recorder = LatencyRecorder()
        for i in range(1, 150):
            recorder.record(0.0017 * i)  # 1.7 ms .. 253 ms
        exact = recorder.summary()
        approx = recorder.histogram_summary()
        assert approx["count"] == exact["count"]
        for key in ("p50_ms", "p95_ms", "p99_ms"):
            index = bucket_index(exact[key])
            width = bucket_upper(index) - bucket_lower(index)
            assert abs(approx[key] - exact[key]) <= width + 1e-9

    def test_telemetry_histogram_records_flush_and_validate(self):
        with telemetry.capture() as cap:
            for value in (1.0, 2.0, 400.0):
                telemetry.get().histogram("latency_ms", value, scheme="x")
        hists = [r for r in cap.records if r["kind"] == "hist"]
        assert len(hists) == 1
        assert hists[0]["value"] == 3
        assert hists[0]["attrs"]["count"] == 3
        validate_record(hists[0])


class TestBurnRate:
    def test_burn_reflects_bad_fraction_over_budget(self):
        now = [1000.0]
        monitor = BurnRateMonitor(clock=lambda: now[0])
        for _ in range(9):
            monitor.record("interactive", 1.0, ok=True)
        monitor.record("interactive", 500.0, ok=True)  # over 50 ms: bad
        rates = monitor.burn_rates()["interactive"]
        assert rates["good"] == 9 and rates["bad"] == 1
        budget = DEFAULT_SLOS["interactive"].error_budget
        assert rates["burn_60s"] == pytest.approx(0.1 / budget)

    def test_fast_window_ages_out_slow_window_remembers(self):
        now = [1000.0]
        monitor = BurnRateMonitor(clock=lambda: now[0])
        monitor.record("interactive", 999.0, ok=True)  # bad
        now[0] += 120.0  # past the 60 s window, inside 3600 s
        rates = monitor.burn_rates()["interactive"]
        assert rates["burn_60s"] == 0.0
        assert rates["burn_3600s"] > 0.0

    def test_failed_request_is_bad_regardless_of_latency(self):
        monitor = BurnRateMonitor(clock=lambda: 0.0)
        assert monitor.record("batch", 0.1, ok=False) is False
        assert monitor.burn_rates()["batch"]["bad"] == 1

    def test_unknown_class_falls_back_to_batch_policy(self):
        monitor = BurnRateMonitor(clock=lambda: 0.0)
        assert monitor.policy_for("mystery").name == "batch"

    def test_classification_default(self):
        assert classify_request(0, None) == "batch"
        assert classify_request(2, None) == "interactive"
        assert classify_request(0, 25.0) == "interactive"

    def test_windows_cover_fast_and_slow(self):
        assert len(BURN_WINDOWS_S) >= 2
        assert min(BURN_WINDOWS_S) < max(BURN_WINDOWS_S)


# -- the property test: complete causal trees under faults -------------------


def _trace_records(records):
    """Group span/event records by trace id."""
    by_trace = {}
    for record in records:
        if "trace_id" in record:
            by_trace.setdefault(record["trace_id"], []).append(record)
    return by_trace


def _assert_complete_tree(trace_id, records):
    spans = [r for r in records if r["kind"] == "span"]
    span_ids = {r["span_id"] for r in spans}
    roots = [r for r in spans if "parent_span_id" not in r]
    assert len(roots) == 1, (
        f"trace {trace_id}: {len(roots)} roots "
        f"({[r['name'] for r in roots]})"
    )
    assert roots[0]["name"] in ("cluster.request", "serving.request")
    for record in records:
        parent = record.get("parent_span_id")
        if parent is not None:
            assert parent in span_ids, (
                f"trace {trace_id}: {record['name']} parent {parent} "
                f"missing"
            )


class TestTraceTreeCompleteness:
    @pytest.fixture(scope="class")
    def fault_run(self):
        """One fault-injected cluster run, shared by every assertion."""
        base = [
            (matrix, scheme)
            for matrix in MATRICES
            for scheme in ("crhcs", "pe_aware")
        ]
        # ~70% duplicates: 30 requests cycling over 8 unique workloads.
        requests = [
            SpMVRequest(source=base[i % len(base)][0],
                        scheme=base[i % len(base)][1])
            for i in range(30)
        ]
        with telemetry.capture() as cap:
            cluster = Cluster(
                devices=4,
                replicas=2,
                hedge_ms=5,
                fault_plan=parse_fault_plan(FAULT_PLAN),
            )
            cluster.start()
            try:
                results = cluster.run(requests, clients=8, timeout=30.0)
            finally:
                cluster.shutdown(drain=True)
            status = cluster.status()
        return results, cap.records, status

    def test_faults_actually_fired(self, fault_run):
        results, _records, status = fault_run
        assert all(result.ok for result in results)
        stats = status["stats"]
        assert stats.get("hedges", 0) > 0
        assert stats.get("removed_devices", 0) >= 1

    def test_every_response_carries_a_known_trace(self, fault_run):
        results, records, _status = fault_run
        by_trace = _trace_records(records)
        for result in results:
            assert result.response.trace_id, (
                f"request {result.response.request_id} has no trace_id"
            )
            assert result.response.trace_id in by_trace

    def test_every_trace_is_one_complete_tree(self, fault_run):
        _results, records, _status = fault_run
        by_trace = _trace_records(records)
        assert by_trace
        for trace_id, trace in by_trace.items():
            _assert_complete_tree(trace_id, trace)

    def test_trees_span_route_engine_and_pipeline(self, fault_run):
        _results, records, _status = fault_run
        names = {
            r["name"].rsplit("/", 1)[-1]
            for r in records
            if r["kind"] == "span" and "trace_id" in r
        }
        for expected in ("cluster.request", "cluster.route",
                         "serving.enqueue", "serving.dispatch",
                         "serving.execute"):
            assert expected in names, f"no {expected} span traced"
        assert names & {"pipeline.load", "pipeline.estimate",
                        "estimator.predict"}, (
            "no pipeline/estimator span joined any trace"
        )

    def test_link_events_tie_followers_and_hedges(self, fault_run):
        _results, records, _status = fault_run
        links = [r for r in records
                 if r["kind"] == "event" and r["name"] == "trace.link"]
        kinds = {link["attrs"]["kind"] for link in links}
        assert "coalesce" in kinds
        assert "hedge" in kinds
        for link in links:
            assert link["attrs"]["peer_trace_id"]

    def test_slo_burn_surfaces_in_status(self, fault_run):
        _results, _records, status = fault_run
        slo = status["slo"]
        active = [entry for entry in slo.values()
                  if entry["good"] or entry["bad"]]
        assert active
        for entry in active:
            for window in BURN_WINDOWS_S:
                assert f"burn_{window:g}s" in entry

    def test_chrome_export_of_fault_run_validates(self, fault_run,
                                                  tmp_path):
        _results, records, _status = fault_run
        out = tmp_path / "fault.chrome.json"
        written = write_chrome(str(out), records)
        assert validate_chrome_file(str(out)) == written > 0
        trace = json.loads(out.read_text())
        traced = [e for e in trace["traceEvents"]
                  if e.get("args", {}).get("trace_id")]
        assert traced, "no exported event carries a trace_id"

    def test_prometheus_export_has_histogram_series(self, fault_run):
        _results, records, _status = fault_run
        text = to_prometheus(records)
        assert "# TYPE" in text
        assert "_bucket{" in text and 'le="+Inf"' in text
        assert "_count" in text and "_sum" in text

    def test_top_renders_the_fault_run(self, fault_run):
        _results, records, _status = fault_run
        text = render_top(records)
        assert "repro top" in text
        assert "slo burn rates" in text
        assert "request traces" in text


class TestEngineTracing:
    def test_single_engine_requests_trace_end_to_end(self):
        with telemetry.capture() as cap:
            engine = ServingEngine(workers=2, fidelity="estimate")
            engine.start()
            try:
                tickets = [
                    engine.submit(SpMVRequest(source=MATRICES[0],
                                              scheme="crhcs"))
                    for _ in range(4)
                ]
                responses = [t.result(30.0) for t in tickets]
            finally:
                engine.shutdown(drain=True)
        assert all(r.ok for r in responses)
        by_trace = _trace_records(cap.records)
        for response in responses:
            assert response.trace_id in by_trace
        for trace_id, trace in by_trace.items():
            _assert_complete_tree(trace_id, trace)
        links = [r for r in cap.records
                 if r["kind"] == "event" and r["name"] == "trace.link"]
        assert any(l["attrs"]["kind"] == "coalesce" for l in links)

    def test_sampled_out_requests_still_serve(self, monkeypatch):
        monkeypatch.setenv(tracing.TRACE_SAMPLE_ENV, "0")
        with telemetry.capture() as cap:
            engine = ServingEngine(workers=1, fidelity="estimate")
            engine.start()
            try:
                response = engine.submit_wait(
                    SpMVRequest(source=MATRICES[1], scheme="crhcs"),
                    timeout=30.0,
                )
            finally:
                engine.shutdown(drain=True)
        assert response.ok
        assert response.trace_id == ""
        assert not any("trace_id" in r for r in cap.records)


# -- tolerant loading and the manifest hash ----------------------------------


class TestTolerantLoading:
    def _write_trace(self, path, junk_lines=0):
        configured = telemetry.configure(str(path))
        with telemetry.get().span("work", k=1):
            telemetry.get().counter("serving.accepted", 1)
            telemetry.get().histogram("serving.latency_ms", 3.25)
        configured.close()
        telemetry.reset()
        telemetry.disable()
        if junk_lines:
            with open(path, "a", encoding="utf-8") as handle:
                handle.write('{"truncated": \n' * junk_lines)

    def test_loader_counts_skipped_lines(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        self._write_trace(trace, junk_lines=2)
        records, skipped = load_trace_tolerant(str(trace))
        assert skipped == 2
        assert all(isinstance(r, dict) for r in records)

    def test_summarize_cli_warns_not_raises(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        self._write_trace(trace, junk_lines=1)
        assert main(["telemetry", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "skipped 1 malformed line" in out

    def test_validate_cli_warns_not_raises(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        self._write_trace(trace, junk_lines=1)
        assert main(["telemetry", "validate", str(trace)]) == 0
        captured = capsys.readouterr()
        assert "skipped 1 malformed line" in captured.err
        assert "validate against the event schema" in captured.out

    def test_schema_breaking_parseable_record_still_fails(
        self, tmp_path, capsys
    ):
        trace = tmp_path / "t.jsonl"
        self._write_trace(trace)
        with open(trace, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"kind": "span"}) + "\n")
        with pytest.raises(TelemetryError):
            validate_file(str(trace))
        assert main(["telemetry", "validate", str(trace)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_manifest_hash_tracks_fidelity_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FIDELITY", raising=False)
        monkeypatch.delenv("REPRO_AUDIT_RATE", raising=False)
        monkeypatch.delenv(tracing.TRACE_SAMPLE_ENV, raising=False)
        base = config_hash()
        monkeypatch.setenv("REPRO_FIDELITY", "estimate")
        fidelity = config_hash()
        assert fidelity != base
        monkeypatch.setenv(tracing.TRACE_SAMPLE_ENV, "0.5")
        assert config_hash() not in (base, fidelity)


class TestCliObservability:
    def _make_trace(self, path):
        configured = telemetry.configure(str(path))
        active = telemetry.get()
        with active.span("serving.execute", scheme="crhcs"):
            active.histogram("serving.latency_ms", 4.5, slo_class="batch")
        active.counter("serving.accepted", 2)
        active.gauge("serving.slo.burn_rate", 0.5,
                     slo_class="batch", window_s=60.0)
        configured.close()
        telemetry.reset()
        telemetry.disable()

    def test_export_chrome(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        self._make_trace(trace)
        out = tmp_path / "t.chrome.json"
        assert main(["telemetry", "export", str(trace),
                     "--format", "chrome", "--out", str(out)]) == 0
        assert validate_chrome_file(str(out)) > 0
        assert "trace events" in capsys.readouterr().out

    def test_export_chrome_default_output_path(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        self._make_trace(trace)
        assert main(["telemetry", "export", str(trace)]) == 0
        assert (tmp_path / "t.jsonl.chrome.json").exists()

    def test_export_prometheus(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        self._make_trace(trace)
        out = tmp_path / "t.prom"
        assert main(["telemetry", "export", str(trace),
                     "--format", "prometheus", "--out", str(out)]) == 0
        text = out.read_text()
        assert "serving_accepted_total" in text
        assert "serving_latency_ms_bucket{" in text

    def test_top_single_shot(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        self._make_trace(trace)
        assert main(["top", str(trace), "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "accepted=2" in out

    def test_top_missing_file_single_shot_errors(self, tmp_path, capsys):
        assert main(["top", str(tmp_path / "absent.jsonl"),
                     "--iterations", "1"]) == 1
        assert "error" in capsys.readouterr().err

    def test_export_knobs_fire_when_trace_closes(self, tmp_path,
                                                 monkeypatch, capsys):
        chrome = tmp_path / "knob.chrome.json"
        prom = tmp_path / "knob.prom"
        monkeypatch.setenv("REPRO_TRACE_CHROME", str(chrome))
        monkeypatch.setenv("REPRO_PROM_FILE", str(prom))
        trace = tmp_path / "run.jsonl"
        assert main(["--telemetry", str(trace), "matrices"]) == 0
        assert validate_chrome_file(str(chrome)) >= 0
        assert prom.exists()

    def test_chrome_trace_shape(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        self._make_trace(trace)
        records, _ = load_trace_tolerant(str(trace))
        chrome = to_chrome_trace(records)
        complete = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
        assert complete and all(e["dur"] >= 0 and e["ts"] >= 0
                                for e in complete)
